package replay

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/blktrace"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// percentileIndex returns the nearest-rank index for quantile q in a
// sorted slice of length n.
func percentileIndex(n int, q float64) int {
	idx := int(q*float64(n)+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// percentile returns the nearest-rank percentile of a sorted slice.
func percentile(sorted []simtime.Duration, q float64) simtime.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[percentileIndex(len(sorted), q)]
}

// Options tune a replay run.
type Options struct {
	// SamplingCycle is the reporting interval for per-interval
	// throughput (paper default: 1 second, configurable).
	SamplingCycle simtime.Duration
	// Tail bounds how long the engine waits after the last bunch for
	// outstanding completions; zero waits indefinitely (until the
	// simulation drains, which always terminates for the device models
	// in this repository).
	Tail simtime.Duration
	// Observer, when non-nil, receives every issue and completion as it
	// happens.  The conformance layer (internal/check) uses it to
	// assert causality and per-device FIFO ordering without adding any
	// cost to unobserved runs.
	Observer Observer
	// Telemetry, when non-nil, records issue/complete counts, response
	// latency, in-flight depth and filter pass/drop into a telemetry
	// set.  It rides its own field rather than Observer because the
	// conformance checker owns (and overwrites) Observer; a nil probe
	// costs one pointer compare per call and never allocates.
	Telemetry *telemetry.ReplayProbe
}

// Observer receives per-IO notifications from a replay run.  bunch is
// the index of the originating bunch in the (possibly filtered) trace;
// pkg is the package's index within that bunch.  Completion callbacks
// fire from inside the simulation, so implementations must not block.
type Observer interface {
	ObserveIssue(bunch, pkg int, at simtime.Time)
	ObserveComplete(bunch, pkg int, issued, finished simtime.Time)
}

// Interval is one sampling cycle's throughput record, matching the
// per-interval IOPS/MBPS TRACER's GUI plots during a run (Fig. 12).
type Interval struct {
	// Start and End bound the cycle.
	Start, End simtime.Time
	// IOs and Bytes count completions inside the cycle.
	IOs   int64
	Bytes int64
	// IOPS and MBPS are the cycle's throughput.
	IOPS, MBPS float64
	// MeanResponse averages response time of the IOs completing in the
	// cycle; zero when none completed.
	MeanResponse simtime.Duration
}

// Result summarises one replay run.
type Result struct {
	// Trace identifies the replayed (possibly filtered) trace.
	Trace string
	// Filter names the load-control filter used.
	Filter string
	// Start and End bound the run on the virtual clock.
	Start, End simtime.Time
	// Issued and Completed count IOs; they are equal after a clean run.
	Issued, Completed int64
	// Bytes is the payload volume replayed.
	Bytes int64
	// IOPS and MBPS are throughput over the whole run.
	IOPS, MBPS float64
	// MeanResponse and MaxResponse aggregate per-IO response times.
	MeanResponse, MaxResponse simtime.Duration
	// P50, P95 and P99 are response-time percentiles: tail latency is
	// the cost dimension energy-conservation techniques trade against
	// savings, so the tool reports it directly.
	P50Response, P95Response, P99Response simtime.Duration
	// Intervals hold the per-cycle series.
	Intervals []Interval
}

// Duration reports the run length.
func (r *Result) Duration() simtime.Duration { return r.End.Sub(r.Start) }

// Replay replays the trace against dev on engine, issuing each bunch at
// its original timestamp (offset from the current virtual time) and all
// packages of a bunch concurrently.  It runs the simulation to
// completion and returns the measured throughput.
//
// Replay is open-loop, as the paper's tool is: bunch issue times come
// from the trace, not from completions, so an overloaded device simply
// accumulates queueing — visible as growing response times.
func Replay(engine *simtime.Engine, dev storage.Device, trace *blktrace.Trace, opts Options) (*Result, error) {
	if err := trace.Validate(); err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	cycle := opts.SamplingCycle
	if cycle <= 0 {
		cycle = simtime.Second
	}
	start := engine.Now()
	res := &Result{Trace: trace.Device, Start: start}
	// One run handler serves every bunch-issue event, carrying the bunch
	// index in the event argument: no closure per bunch, and the engine
	// heap is grown once so bulk scheduling never pays an append growth.
	// The completion slice is the hottest remaining allocation of a
	// replay run: one record per IO package, appended from the tightest
	// callback.  The trace knows its package count up front, so reserve
	// it all.
	run := &openLoopRun{
		dev:         dev,
		trace:       trace,
		res:         res,
		obs:         opts.Observer,
		tel:         opts.Telemetry,
		completions: make([]completion, 0, trace.NumIOs()),
	}
	engine.Grow(len(trace.Bunches))
	for i := range trace.Bunches {
		engine.ScheduleEvent(start.Add(trace.Bunches[i].Time), run, simtime.EventArg{I64: int64(i)})
	}
	if opts.Tail > 0 {
		engine.RunUntil(start.Add(trace.Duration() + opts.Tail))
	} else {
		engine.Run()
	}

	finalize(res, run.completions, start.Add(trace.Duration()), cycle)
	return res, nil
}

// openLoopRun is the closure-free bunch-issue handler for one Replay
// call: OnEvent fires at a bunch's arrival time and submits all of its
// packages concurrently.
type openLoopRun struct {
	dev         storage.Device
	trace       *blktrace.Trace
	res         *Result
	obs         Observer
	tel         *telemetry.ReplayProbe
	completions []completion
}

// OnEvent implements simtime.Handler; arg.I64 is the bunch index.
func (r *openLoopRun) OnEvent(e *simtime.Engine, arg simtime.EventArg) {
	issueTime := e.Now()
	bunch := int(arg.I64)
	for pi, p := range r.trace.Bunches[arg.I64].Packages {
		size := p.Size
		r.res.Issued++
		if r.obs != nil {
			r.obs.ObserveIssue(bunch, pi, issueTime)
		}
		r.tel.OnIssue(bunch, pi, issueTime)
		pkg := pi
		r.dev.Submit(p.Request(), func(finish simtime.Time) {
			r.res.Completed++
			if r.obs != nil {
				r.obs.ObserveComplete(bunch, pkg, issueTime, finish)
			}
			r.tel.OnComplete(bunch, pkg, issueTime, finish, size)
			r.completions = append(r.completions, completion{
				finish:   finish,
				issue:    issueTime,
				bytes:    size,
				response: finish.Sub(issueTime),
			})
		})
	}
}

// completion records one finished IO for aggregation.
type completion struct {
	finish   simtime.Time
	issue    simtime.Time
	bytes    int64
	response simtime.Duration
}

// finalize derives throughput, response statistics and the per-cycle
// interval series from raw completions.  minEnd extends the run window
// (open-loop replay measures over at least the trace duration even if
// the device finished early).  finalize takes ownership of the
// completions slice and may reorder it.
func finalize(res *Result, completions []completion, minEnd simtime.Time, cycle simtime.Duration) {
	end := minEnd
	var respSum simtime.Duration
	for _, c := range completions {
		if c.finish > end {
			end = c.finish
		}
		res.Bytes += c.bytes
		respSum += c.response
		if c.response > res.MaxResponse {
			res.MaxResponse = c.response
		}
	}
	res.End = end

	// Per-cycle series, bucketing completions by finish time.  Bucket
	// sums are order-independent, so this runs before the percentile
	// sort reorders the slice.
	start := res.Start
	if res.Duration() > 0 {
		nBuckets := int((res.Duration() + cycle - 1) / cycle)
		type agg struct {
			ios, bytes int64
			resp       simtime.Duration
		}
		buckets := make([]agg, nBuckets)
		res.Intervals = make([]Interval, 0, nBuckets)
		for _, c := range completions {
			i := int(c.finish.Sub(start) / cycle)
			if i < 0 {
				// A completion can finish before res.Start when the
				// caller's engine clock ran ahead of the replay start;
				// clamp symmetrically with the upper bound.
				i = 0
			}
			if i >= nBuckets {
				i = nBuckets - 1
			}
			buckets[i].ios++
			buckets[i].bytes += c.bytes
			buckets[i].resp += c.response
		}
		for i, b := range buckets {
			ivStart := start.Add(simtime.Duration(i) * cycle)
			ivEnd := ivStart.Add(cycle)
			if ivEnd > res.End {
				ivEnd = res.End
			}
			secs := ivEnd.Sub(ivStart).Seconds()
			iv := Interval{Start: ivStart, End: ivEnd, IOs: b.ios, Bytes: b.bytes}
			if secs > 0 {
				iv.IOPS = float64(b.ios) / secs
				iv.MBPS = float64(b.bytes) / (1 << 20) / secs
			}
			if b.ios > 0 {
				iv.MeanResponse = b.resp / simtime.Duration(b.ios)
			}
			res.Intervals = append(res.Intervals, iv)
		}
	}

	if res.Completed > 0 {
		res.MeanResponse = respSum / simtime.Duration(res.Completed)
		// Sort the completions themselves by response time instead of
		// copying responses into a scratch slice: the records are not
		// needed in finish order past this point, so the percentile
		// pass allocates nothing.
		slices.SortFunc(completions, func(a, b completion) int {
			return cmp.Compare(a.response, b.response)
		})
		res.P50Response = completions[percentileIndex(len(completions), 0.50)].response
		res.P95Response = completions[percentileIndex(len(completions), 0.95)].response
		res.P99Response = completions[percentileIndex(len(completions), 0.99)].response
	}
	if secs := res.Duration().Seconds(); secs > 0 {
		res.IOPS = float64(res.Completed) / secs
		res.MBPS = float64(res.Bytes) / (1 << 20) / secs
	}
}

// ReplayClosedLoop replays the trace's requests in order while ignoring
// their timestamps, keeping queueDepth requests outstanding — the
// "reduce idle periods to raise intensity" mode Section IV-A motivates,
// taken to its as-fast-as-possible limit.  It measures the device's
// peak capability under the trace's exact access pattern.
func ReplayClosedLoop(engine *simtime.Engine, dev storage.Device, trace *blktrace.Trace, queueDepth int, opts Options) (*Result, error) {
	if err := trace.Validate(); err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	if queueDepth <= 0 {
		queueDepth = 8
	}
	cycle := opts.SamplingCycle
	if cycle <= 0 {
		cycle = simtime.Second
	}
	start := engine.Now()
	res := &Result{Trace: trace.Device, Start: start, Filter: "closed-loop"}
	nIOs := trace.NumIOs()
	completions := make([]completion, 0, nIOs)

	// Flatten to a request list preserving trace order, remembering each
	// package's (bunch, pkg) origin for the observer.
	type flatPkg struct {
		p          blktrace.IOPackage
		bunch, pkg int
	}
	pkgs := make([]flatPkg, 0, nIOs)
	for i := range trace.Bunches {
		for pi, p := range trace.Bunches[i].Packages {
			pkgs = append(pkgs, flatPkg{p: p, bunch: i, pkg: pi})
		}
	}
	next := 0
	var issue func()
	issue = func() {
		if next >= len(pkgs) {
			return
		}
		fp := pkgs[next]
		next++
		res.Issued++
		issueTime := engine.Now()
		if opts.Observer != nil {
			opts.Observer.ObserveIssue(fp.bunch, fp.pkg, issueTime)
		}
		opts.Telemetry.OnIssue(fp.bunch, fp.pkg, issueTime)
		dev.Submit(fp.p.Request(), func(finish simtime.Time) {
			res.Completed++
			if opts.Observer != nil {
				opts.Observer.ObserveComplete(fp.bunch, fp.pkg, issueTime, finish)
			}
			opts.Telemetry.OnComplete(fp.bunch, fp.pkg, issueTime, finish, fp.p.Size)
			completions = append(completions, completion{
				finish:   finish,
				issue:    issueTime,
				bytes:    fp.p.Size,
				response: finish.Sub(issueTime),
			})
			issue()
		})
	}
	for i := 0; i < queueDepth && i < len(pkgs); i++ {
		issue()
	}
	engine.Run()
	finalize(res, completions, start, cycle)
	return res, nil
}

// ReplayFiltered applies the filter and replays the result, stamping
// the filter name into the Result.
func ReplayFiltered(engine *simtime.Engine, dev storage.Device, trace *blktrace.Trace, f Filter, opts Options) (*Result, error) {
	filtered := f.Apply(trace)
	opts.Telemetry.OnFilter(filtered.NumIOs(), trace.NumIOs()-filtered.NumIOs())
	res, err := Replay(engine, dev, filtered, opts)
	if err != nil {
		return nil, err
	}
	res.Filter = f.Name()
	return res, nil
}

// ReplayAtLoad is the common case: replay at a configured load
// proportion using the paper's uniform filter with the default group
// size.
func ReplayAtLoad(engine *simtime.Engine, dev storage.Device, trace *blktrace.Trace, proportion float64, opts Options) (*Result, error) {
	return ReplayFiltered(engine, dev, trace, UniformFilter{Proportion: proportion}, opts)
}
