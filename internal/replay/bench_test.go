package replay

import (
	"testing"

	"repro/internal/blktrace"
	"repro/internal/disksim"
	"repro/internal/raid"
	"repro/internal/simtime"
	"repro/internal/synth"
)

// benchTrace builds a fixed synthetic web-server trace once; every
// benchmark iteration replays the same bunches so allocs/op and ns/op
// track the replay path, not trace synthesis.
var benchTrace *blktrace.Trace

func getBenchTrace(b *testing.B) *blktrace.Trace {
	b.Helper()
	if benchTrace == nil {
		p := synth.DefaultWebServer()
		p.Duration = 2 * simtime.Second
		benchTrace = synth.WebServerTrace(p)
	}
	return benchTrace
}

// BenchmarkEndToEndReplay measures a full open-loop replay against a
// RAID-5 HDD array: trace issue, controller fan-out, per-disk service
// and completion aggregation all ride the simtime kernel, so this is
// the end-to-end cost the kernel rewrite targets.
func BenchmarkEndToEndReplay(b *testing.B) {
	tr := getBenchTrace(b)
	nIOs := float64(tr.NumIOs())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := simtime.NewEngine()
		arr, err := raid.NewHDDArray(e, raid.DefaultParams(), 5, disksim.Seagate7200())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Replay(e, arr, tr, Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(nIOs*float64(b.N)/b.Elapsed().Seconds(), "IOs/sec")
}
