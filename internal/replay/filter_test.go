package replay

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/blktrace"
	"repro/internal/simtime"
	"repro/internal/storage"
)

// makeTrace builds a trace of n single-IO bunches spaced 1 ms apart.
func makeTrace(n int) *blktrace.Trace {
	t := &blktrace.Trace{Device: "t"}
	for i := 0; i < n; i++ {
		t.Bunches = append(t.Bunches, blktrace.Bunch{
			Time: simtime.Duration(i) * simtime.Millisecond,
			Packages: []blktrace.IOPackage{
				{Sector: int64(i) * 8, Size: 4096, Op: storage.Read},
			},
		})
	}
	return t
}

func TestSelectIndicesMatchesFig5(t *testing.T) {
	// Fig. 5: for groups of 10, 10% selects the 10th bunch; 20% the 5th
	// and 10th; 30% spreads to three uniform positions; 100% selects all.
	cases := []struct {
		p    float64
		want []int
	}{
		{0.1, []int{9}},
		{0.2, []int{4, 9}},
		{0.3, []int{2, 5, 9}},
		{0.5, []int{1, 3, 5, 7, 9}},
		{1.0, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
	}
	for _, c := range cases {
		got := selectIndices(10, c.p)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("selectIndices(10, %v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSelectIndicesDistinctAndSorted(t *testing.T) {
	for g := 1; g <= 25; g++ {
		for k := 1; k <= g; k++ {
			p := float64(k) / float64(g)
			idx := selectIndices(g, p)
			if len(idx) != k {
				t.Fatalf("g=%d p=%v: got %d indices, want %d", g, p, len(idx), k)
			}
			for i := 1; i < len(idx); i++ {
				if idx[i] <= idx[i-1] {
					t.Fatalf("g=%d k=%d: indices not strictly increasing: %v", g, k, idx)
				}
			}
			if idx[len(idx)-1] >= g {
				t.Fatalf("g=%d k=%d: index out of range: %v", g, k, idx)
			}
		}
	}
}

func TestSelectIndicesTinyProportion(t *testing.T) {
	// A positive proportion must never select nothing from a full group.
	if got := selectIndices(10, 0.01); len(got) != 1 {
		t.Fatalf("selectIndices(10, 0.01) = %v, want one bunch", got)
	}
	if got := selectIndices(0, 0.5); got != nil {
		t.Fatalf("empty group should select nothing, got %v", got)
	}
}

func TestUniformFilterProportions(t *testing.T) {
	tr := makeTrace(1000)
	for _, p := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		got := UniformFilter{Proportion: p}.Apply(tr)
		want := int(math.Round(p * 1000))
		if got.NumBunches() != want {
			t.Errorf("p=%v: %d bunches, want %d", p, got.NumBunches(), want)
		}
		if err := got.Validate(); err != nil {
			t.Errorf("p=%v: invalid filtered trace: %v", p, err)
		}
	}
}

func TestUniformFilterIdentityAndEmpty(t *testing.T) {
	tr := makeTrace(57)
	full := UniformFilter{Proportion: 1}.Apply(tr)
	if !reflect.DeepEqual(full, tr) {
		t.Fatal("100% filter should be the identity")
	}
	// and must be a copy, not an alias
	full.Bunches[0].Packages[0].Sector = 12345
	if tr.Bunches[0].Packages[0].Sector == 12345 {
		t.Fatal("100% filter aliases the input")
	}
	empty := UniformFilter{Proportion: 0}.Apply(tr)
	if empty.NumBunches() != 0 {
		t.Fatal("0% filter should drop everything")
	}
}

func TestUniformFilterPreservesTimestampsAndOrder(t *testing.T) {
	tr := makeTrace(100)
	got := UniformFilter{Proportion: 0.3}.Apply(tr)
	// Every selected bunch must exist in the original with identical
	// timestamp and payload; order must be preserved.
	orig := map[simtime.Duration]blktrace.Bunch{}
	for _, b := range tr.Bunches {
		orig[b.Time] = b
	}
	var prev simtime.Duration = -1
	for _, b := range got.Bunches {
		ob, ok := orig[b.Time]
		if !ok {
			t.Fatalf("filtered bunch at %v not in original", b.Time)
		}
		if !reflect.DeepEqual(ob.Packages, b.Packages) {
			t.Fatalf("packages changed at %v", b.Time)
		}
		if b.Time <= prev {
			t.Fatal("filtered bunches out of order")
		}
		prev = b.Time
	}
}

func TestUniformFilterSpreadsSelection(t *testing.T) {
	// Selected bunches at 10% must come one per group of 10, never two
	// from the same group — that is what "uniform" means here.
	tr := makeTrace(200)
	got := UniformFilter{Proportion: 0.1}.Apply(tr)
	if got.NumBunches() != 20 {
		t.Fatalf("got %d bunches", got.NumBunches())
	}
	for i, b := range got.Bunches {
		group := int(b.Time / (10 * simtime.Millisecond))
		if group != i {
			t.Fatalf("bunch %d came from group %d", i, group)
		}
	}
}

func TestUniformFilterPartialFinalGroup(t *testing.T) {
	// 25 bunches at 20%: groups of 10,10,5 -> 2+2+1 = 5 selected.
	tr := makeTrace(25)
	got := UniformFilter{Proportion: 0.2}.Apply(tr)
	if got.NumBunches() != 5 {
		t.Fatalf("got %d bunches, want 5", got.NumBunches())
	}
}

func TestUniformFilterCustomGroupSize(t *testing.T) {
	tr := makeTrace(100)
	got := UniformFilter{Proportion: 0.5, GroupSize: 20}.Apply(tr)
	if got.NumBunches() != 50 {
		t.Fatalf("got %d bunches, want 50", got.NumBunches())
	}
}

// Property: for any proportion and trace size, the uniform filter keeps
// round(p*G) bunches per full group, output is valid, monotone in p,
// and is always a subset of the original.
func TestPropertyUniformFilter(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 21))
		n := 1 + rng.IntN(500)
		tr := makeTrace(n)
		p1 := float64(1+rng.IntN(10)) / 10
		p2 := float64(1+rng.IntN(10)) / 10
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		f1 := UniformFilter{Proportion: p1}.Apply(tr)
		f2 := UniformFilter{Proportion: p2}.Apply(tr)
		if f1.Validate() != nil || f2.Validate() != nil {
			return false
		}
		if f1.NumBunches() > f2.NumBunches() {
			return false
		}
		// Full groups contribute exactly round(p*10).
		fullGroups := n / 10
		wantMin := fullGroups * int(math.Round(p1*10))
		return f1.NumBunches() >= wantMin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomFilterBernoulliSampling(t *testing.T) {
	tr := makeTrace(2000)
	r := RandomFilter{Proportion: 0.3, Seed: 7}.Apply(tr)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// Count is only right in expectation: 600 +/- ~4 sigma (~41).
	if n := r.NumBunches(); n < 520 || n > 680 {
		t.Fatalf("Bernoulli count %d far from expectation 600", n)
	}
	u := UniformFilter{Proportion: 0.3}.Apply(tr)
	if reflect.DeepEqual(u.Bunches, r.Bunches) {
		t.Fatal("random filter selected exactly the uniform positions (suspicious)")
	}
	// Determinism under the same seed.
	r2 := RandomFilter{Proportion: 0.3, Seed: 7}.Apply(tr)
	if !reflect.DeepEqual(r.Bunches, r2.Bunches) {
		t.Fatal("random filter not deterministic for fixed seed")
	}
	// Degenerate proportions.
	if (RandomFilter{Proportion: 1, Seed: 1}).Apply(tr).NumBunches() != 2000 {
		t.Fatal("p=1 should keep everything")
	}
	if (RandomFilter{Proportion: 0, Seed: 1}).Apply(tr).NumBunches() != 0 {
		t.Fatal("p=0 should drop everything")
	}
}

func TestRandomFilterDistortsBurstsMoreThanUniform(t *testing.T) {
	// Build a strongly wavy trace: alternating busy (big bunches) and
	// quiet (small bunches) groups.  The uniform filter keeps every
	// group's contribution proportional; the random filter's per-group
	// IO count varies because bunch sizes inside a group differ.
	tr := &blktrace.Trace{Device: "wave"}
	for i := 0; i < 400; i++ {
		nPkgs := 1
		if (i/10)%2 == 0 {
			nPkgs = 10 // crest groups
		}
		pkgs := make([]blktrace.IOPackage, nPkgs)
		for j := range pkgs {
			pkgs[j] = blktrace.IOPackage{Sector: int64(i*64 + j*8), Size: 4096, Op: storage.Read}
		}
		tr.Bunches = append(tr.Bunches, blktrace.Bunch{Time: simtime.Duration(i) * simtime.Millisecond, Packages: pkgs})
	}
	// Mix bunch sizes inside groups by rotating one big bunch into quiet
	// groups.
	for i := 5; i < 400; i += 20 {
		tr.Bunches[i].Packages = tr.Bunches[i].Packages[:1]
	}

	perGroupIOs := func(f Filter) []float64 {
		ft := f.Apply(tr)
		counts := make([]float64, 40)
		for _, b := range ft.Bunches {
			counts[int(b.Time/(10*simtime.Millisecond))] += float64(len(b.Packages))
		}
		return counts
	}
	origin := perGroupIOs(Identity{})
	uf := perGroupIOs(UniformFilter{Proportion: 0.2})
	deviation := func(filtered []float64) float64 {
		var dev float64
		for g := range origin {
			if origin[g] == 0 {
				continue
			}
			dev += math.Abs(filtered[g]/origin[g] - 0.2)
		}
		return dev
	}
	uDev := deviation(uf)
	var rDevSum float64
	const trials = 20
	for s := uint64(0); s < trials; s++ {
		rDevSum += deviation(perGroupIOs(RandomFilter{Proportion: 0.2, Seed: s}))
	}
	rDev := rDevSum / trials
	if uDev >= rDev {
		t.Fatalf("uniform deviation %.3f should beat random %.3f", uDev, rDev)
	}
}

func TestIntervalScaler(t *testing.T) {
	tr := makeTrace(100)
	half := IntervalScaler{Intensity: 2}.Apply(tr)
	if half.Duration() != tr.Duration()/2 {
		t.Fatalf("2x intensity duration = %v, want %v", half.Duration(), tr.Duration()/2)
	}
	if half.NumIOs() != tr.NumIOs() {
		t.Fatal("scaler dropped IOs")
	}
	slow := IntervalScaler{Intensity: 0.1}.Apply(tr)
	if slow.Duration() != tr.Duration()*10 {
		t.Fatalf("0.1x intensity duration = %v", slow.Duration())
	}
	if err := slow.Validate(); err != nil {
		t.Fatal(err)
	}
	if (IntervalScaler{}).Apply(tr).NumBunches() != 0 {
		t.Fatal("non-positive intensity should empty the trace")
	}
}

func TestChain(t *testing.T) {
	tr := makeTrace(100)
	c := Chain{UniformFilter{Proportion: 0.5}, IntervalScaler{Intensity: 2}}
	got := c.Apply(tr)
	if got.NumBunches() != 50 {
		t.Fatalf("chained bunches = %d", got.NumBunches())
	}
	if got.Duration() >= tr.Duration()/2+simtime.Millisecond {
		t.Fatalf("chained duration = %v", got.Duration())
	}
	if c.Name() != "uniform-50%+scale-200%" {
		t.Fatalf("chain name = %q", c.Name())
	}
	// Empty chain clones.
	e := Chain{}.Apply(tr)
	if !reflect.DeepEqual(e, tr) {
		t.Fatal("empty chain should clone")
	}
	e.Bunches[0].Packages[0].Sector = 777
	if tr.Bunches[0].Packages[0].Sector == 777 {
		t.Fatal("empty chain aliases input")
	}
}

func TestFilterNames(t *testing.T) {
	if (UniformFilter{Proportion: 0.3}).Name() != "uniform-30%" {
		t.Fatal("uniform name")
	}
	if (RandomFilter{Proportion: 0.7}).Name() != "random-70%" {
		t.Fatal("random name")
	}
	if (IntervalScaler{Intensity: 10}).Name() != "scale-1000%" {
		t.Fatal("scaler name")
	}
	if (Identity{}).Name() != "identity" {
		t.Fatal("identity name")
	}
}
