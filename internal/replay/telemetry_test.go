package replay

import (
	"testing"

	"repro/internal/blktrace"
	"repro/internal/disksim"
	"repro/internal/raid"
	"repro/internal/simtime"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// allocTestTrace builds a small fixed trace for allocation accounting.
func allocTestTrace() *blktrace.Trace {
	p := synth.DefaultWebServer()
	p.Duration = simtime.Second
	return synth.WebServerTrace(p)
}

// replayAllocs measures allocations of one full end-to-end replay
// (engine + array construction excluded) with the given options and
// optional array-level telemetry attachment.
func replayAllocs(t *testing.T, tr *blktrace.Trace, set *telemetry.Set, opts Options) float64 {
	t.Helper()
	return testing.AllocsPerRun(3, func() {
		e := simtime.NewEngine()
		arr, err := raid.NewHDDArray(e, raid.DefaultParams(), 5, disksim.Seagate7200())
		if err != nil {
			t.Fatal(err)
		}
		arr.AttachTelemetry(set)
		if _, err := Replay(e, arr, tr, opts); err != nil {
			t.Fatal(err)
		}
	})
}

// TestDisabledTelemetryReplayAllocsMatchBaseline is the satellite
// regression guard: a replay with telemetry wired everywhere but
// disabled (nil set, nil probe) must allocate exactly as much as a
// replay that never heard of telemetry.  The disabled hot path is one
// pointer compare; any future allocation on it fails here.
func TestDisabledTelemetryReplayAllocsMatchBaseline(t *testing.T) {
	tr := allocTestTrace()
	// Warm up once so lazy one-time allocations (runtime internals,
	// package state) don't land inside either measurement.
	replayAllocs(t, tr, nil, Options{})
	base := replayAllocs(t, tr, nil, Options{})
	disabled := replayAllocs(t, tr, nil, Options{Telemetry: nil})
	if base != disabled {
		t.Fatalf("disabled-telemetry replay allocs %v != baseline %v", disabled, base)
	}
}

// TestTelemetryProbeCountsReplay checks the enabled path records what
// the replay reports, in both open- and closed-loop modes.
func TestTelemetryProbeCountsReplay(t *testing.T) {
	tr := allocTestTrace()

	t.Run("open-loop", func(t *testing.T) {
		set := telemetry.New(telemetry.Options{})
		probe := telemetry.NewReplayProbe(set)
		e := simtime.NewEngine()
		arr, err := raid.NewHDDArray(e, raid.DefaultParams(), 5, disksim.Seagate7200())
		if err != nil {
			t.Fatal(err)
		}
		res, err := ReplayAtLoad(e, arr, tr, 0.5, Options{Telemetry: probe})
		if err != nil {
			t.Fatal(err)
		}
		reg := set.Registry()
		if got := reg.Counter("replay.issued").Value(); got != res.Issued {
			t.Fatalf("issued counter = %d, want %d", got, res.Issued)
		}
		if got := reg.Counter("replay.completed").Value(); got != res.Completed {
			t.Fatalf("completed counter = %d, want %d", got, res.Completed)
		}
		pass := reg.Counter("replay.filter_pass").Value()
		drop := reg.Counter("replay.filter_drop").Value()
		if pass+drop != int64(tr.NumIOs()) {
			t.Fatalf("filter pass %d + drop %d != %d IOs", pass, drop, tr.NumIOs())
		}
		if got := len(set.Tracer().Spans()); int64(got) != res.Completed {
			t.Fatalf("spans = %d, want one per completion %d", got, res.Completed)
		}
		if reg.Counter("replay.bytes").Value() != res.Bytes {
			t.Fatal("bytes counter diverges from result")
		}
	})

	t.Run("closed-loop", func(t *testing.T) {
		set := telemetry.New(telemetry.Options{})
		probe := telemetry.NewReplayProbe(set)
		e := simtime.NewEngine()
		arr, err := raid.NewHDDArray(e, raid.DefaultParams(), 5, disksim.Seagate7200())
		if err != nil {
			t.Fatal(err)
		}
		res, err := ReplayClosedLoop(e, arr, tr, 4, Options{Telemetry: probe})
		if err != nil {
			t.Fatal(err)
		}
		reg := set.Registry()
		if got := reg.Counter("replay.completed").Value(); got != res.Completed {
			t.Fatalf("completed counter = %d, want %d", got, res.Completed)
		}
		if got := reg.Watermark("replay.inflight_max").Value(); got < 1 || got > 4 {
			t.Fatalf("inflight max = %d, want within queue depth 4", got)
		}
		if got := reg.Gauge("replay.inflight").Value(); got != 0 {
			t.Fatalf("inflight gauge = %d after drain, want 0", got)
		}
	})
}

// TestReplayResultsUnchangedByTelemetry guards against instrumentation
// perturbing the simulation: identical results with and without a live
// probe.
func TestReplayResultsUnchangedByTelemetry(t *testing.T) {
	tr := allocTestTrace()
	runOnce := func(set *telemetry.Set, probe *telemetry.ReplayProbe) *Result {
		e := simtime.NewEngine()
		arr, err := raid.NewHDDArray(e, raid.DefaultParams(), 5, disksim.Seagate7200())
		if err != nil {
			t.Fatal(err)
		}
		arr.AttachTelemetry(set)
		res, err := Replay(e, arr, tr, Options{Telemetry: probe})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := runOnce(nil, nil)
	set := telemetry.New(telemetry.Options{})
	instr := runOnce(set, telemetry.NewReplayProbe(set))
	if plain.Completed != instr.Completed || plain.End != instr.End ||
		plain.MeanResponse != instr.MeanResponse || plain.P99Response != instr.P99Response {
		t.Fatalf("telemetry perturbed the run:\nplain %+v\ninstr %+v", plain, instr)
	}
}
