package replay

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/blktrace"
	"repro/internal/disksim"
	"repro/internal/raid"
	"repro/internal/simtime"
	"repro/internal/synth"
)

// benchSystem is buildSystem without the testing.T plumbing.
func benchSystem(nshards int) ([]*simtime.Engine, *raid.Array, error) {
	engines := make([]*simtime.Engine, nshards)
	for i := range engines {
		engines[i] = simtime.NewEngine()
	}
	a, err := raid.NewHDDArrayEngines(engines, raid.DefaultParams(), 6, disksim.Seagate7200())
	return engines, a, err
}

// BenchmarkShardedReplay measures the sharded executor end to end at
// several shard counts, over both the buffered and the zero-copy
// memory-mapped trace source.  CI's bench-smoke job executes it once
// per commit; `tracer-bench -run kernel` records the numbers in
// BENCH_replay.json.
func BenchmarkShardedReplay(b *testing.B) {
	wp := synth.DefaultWebServer()
	wp.Duration = simtime.Second / 2
	trace := synth.WebServerTrace(wp)

	dir := b.TempDir()
	path := filepath.Join(dir, "bench.rmap")
	if err := blktrace.WriteMappedFile(path, trace); err != nil {
		b.Fatal(err)
	}
	mapped, err := blktrace.OpenMapped(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { mapped.Close(); os.Remove(path) })

	for _, src := range []struct {
		name string
		src  BunchSource
	}{{"buffered", trace}, {"mmap", mapped}} {
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("src=%s/shards=%d", src.name, shards), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					engines, array, err := benchSystem(shards)
					if err != nil {
						b.Fatal(err)
					}
					res, err := ReplaySharded(engines, array, src.src, ShardedOptions{})
					if err != nil {
						b.Fatal(err)
					}
					if res.Completed != int64(trace.NumIOs()) {
						b.Fatalf("completed %d of %d IOs", res.Completed, trace.NumIOs())
					}
				}
				b.ReportMetric(float64(trace.NumIOs())*float64(b.N)/b.Elapsed().Seconds(), "ios/s")
			})
		}
	}
}
