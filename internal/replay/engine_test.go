package replay

import (
	"math"
	"testing"

	"repro/internal/blktrace"
	"repro/internal/disksim"
	"repro/internal/raid"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/synth"
)

// fixedLatencyDevice completes every request after a constant delay.
type fixedLatencyDevice struct {
	engine  *simtime.Engine
	latency simtime.Duration
}

func (d *fixedLatencyDevice) Submit(req storage.Request, done func(simtime.Time)) {
	finish := d.engine.Now().Add(d.latency)
	d.engine.Schedule(finish, func() { done(finish) })
}

func (d *fixedLatencyDevice) Capacity() int64 { return 1 << 40 }

func TestReplayIssuesEverything(t *testing.T) {
	e := simtime.NewEngine()
	dev := &fixedLatencyDevice{engine: e, latency: simtime.Millisecond}
	tr := makeTrace(100)
	res, err := Replay(e, dev, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != 100 || res.Completed != 100 {
		t.Fatalf("issued=%d completed=%d, want 100/100", res.Issued, res.Completed)
	}
	if res.Bytes != 100*4096 {
		t.Fatalf("bytes = %d", res.Bytes)
	}
	// last bunch at 99 ms + 1 ms latency
	if res.End != simtime.Time(100*simtime.Millisecond) {
		t.Fatalf("End = %v, want 100ms", res.End)
	}
	if res.MeanResponse != simtime.Millisecond || res.MaxResponse != simtime.Millisecond {
		t.Fatalf("responses: mean=%v max=%v", res.MeanResponse, res.MaxResponse)
	}
	wantIOPS := 100 / 0.1
	if math.Abs(res.IOPS-wantIOPS) > 1e-6 {
		t.Fatalf("IOPS = %v, want %v", res.IOPS, wantIOPS)
	}
}

func TestReplayHonoursTimestamps(t *testing.T) {
	e := simtime.NewEngine()
	dev := &fixedLatencyDevice{engine: e, latency: simtime.Microsecond}
	tr := &blktrace.Trace{Device: "x", Bunches: []blktrace.Bunch{
		{Time: 50 * simtime.Millisecond, Packages: []blktrace.IOPackage{{Sector: 0, Size: 512, Op: storage.Read}}},
	}}
	res, err := Replay(e, dev, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := simtime.Time(50*simtime.Millisecond + simtime.Microsecond)
	if res.End != want {
		t.Fatalf("completion at %v, want %v (issue at original timestamp)", res.End, want)
	}
}

func TestReplayBunchConcurrency(t *testing.T) {
	// All packages of one bunch must be issued at the same instant: with
	// a fixed-latency device they complete at the same time.
	e := simtime.NewEngine()
	dev := &fixedLatencyDevice{engine: e, latency: simtime.Millisecond}
	tr := &blktrace.Trace{Device: "x", Bunches: []blktrace.Bunch{
		{Time: 0, Packages: []blktrace.IOPackage{
			{Sector: 0, Size: 512, Op: storage.Read},
			{Sector: 100, Size: 512, Op: storage.Read},
			{Sector: 200, Size: 512, Op: storage.Write},
		}},
	}}
	res, err := Replay(e, dev, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.End != simtime.Time(simtime.Millisecond) {
		t.Fatalf("End = %v: bunch not issued concurrently", res.End)
	}
	if res.MaxResponse != simtime.Millisecond {
		t.Fatalf("MaxResponse = %v", res.MaxResponse)
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	e := simtime.NewEngine()
	dev := &fixedLatencyDevice{engine: e, latency: simtime.Millisecond}
	res, err := Replay(e, dev, &blktrace.Trace{Device: "empty"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != 0 || res.IOPS != 0 || len(res.Intervals) != 0 {
		t.Fatalf("empty replay: %+v", res)
	}
}

func TestReplayRejectsInvalidTrace(t *testing.T) {
	e := simtime.NewEngine()
	dev := &fixedLatencyDevice{engine: e, latency: simtime.Millisecond}
	bad := &blktrace.Trace{Bunches: []blktrace.Bunch{{Time: 0}}} // empty bunch
	if _, err := Replay(e, dev, bad, Options{}); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

func TestReplayIntervals(t *testing.T) {
	e := simtime.NewEngine()
	dev := &fixedLatencyDevice{engine: e, latency: simtime.Microsecond}
	// 1 IO per ms for 2.5 virtual seconds.
	tr := makeTraceSpaced(2500, simtime.Millisecond)
	res, err := Replay(e, dev, tr, Options{SamplingCycle: simtime.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) != 3 {
		t.Fatalf("%d intervals, want 3", len(res.Intervals))
	}
	var total int64
	for _, iv := range res.Intervals {
		total += iv.IOs
	}
	if total != 2500 {
		t.Fatalf("interval IOs sum to %d, want 2500", total)
	}
	// Steady rate: first two full intervals should see ~1000 IOPS.
	if math.Abs(res.Intervals[0].IOPS-1000) > 10 || math.Abs(res.Intervals[1].IOPS-1000) > 10 {
		t.Fatalf("interval IOPS = %v, %v; want ~1000", res.Intervals[0].IOPS, res.Intervals[1].IOPS)
	}
}

func makeTraceSpaced(n int, gap simtime.Duration) *blktrace.Trace {
	t := &blktrace.Trace{Device: "spaced"}
	for i := 0; i < n; i++ {
		t.Bunches = append(t.Bunches, blktrace.Bunch{
			Time:     simtime.Duration(i) * gap,
			Packages: []blktrace.IOPackage{{Sector: int64(i) * 8, Size: 4096, Op: storage.Read}},
		})
	}
	return t
}

func TestReplayTailCutsWait(t *testing.T) {
	e := simtime.NewEngine()
	dev := &fixedLatencyDevice{engine: e, latency: simtime.Hour} // pathological device
	tr := makeTrace(5)
	res, err := Replay(e, dev, tr, Options{Tail: simtime.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 {
		t.Fatalf("completed %d, expected tail to cut off the hour-long IOs", res.Completed)
	}
	if res.Issued != 5 {
		t.Fatalf("issued = %d", res.Issued)
	}
}

// TestLoadControlAccuracy is the in-package version of the paper's
// Fig. 8 validation: collect a fixed-size peak trace, replay it at
// every configured load proportion, and check the measured IOPS
// proportion tracks the configured one closely.
func TestLoadControlAccuracy(t *testing.T) {
	// Collect the peak trace on a pristine array.
	e1 := simtime.NewEngine()
	a1, err := raid.NewHDDArray(e1, raid.DefaultParams(), 6, disksim.Seagate7200())
	if err != nil {
		t.Fatal(err)
	}
	trace, err := synth.Collect(e1, a1, synth.CollectParams{
		Mode:            synth.Mode{RequestBytes: 4096, ReadRatio: 0, RandomRatio: 0.5},
		Duration:        4 * simtime.Second,
		QueueDepth:      8,
		WorkingSetBytes: 8 << 30,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}

	measure := func(p float64) float64 {
		e := simtime.NewEngine()
		a, err := raid.NewHDDArray(e, raid.DefaultParams(), 6, disksim.Seagate7200())
		if err != nil {
			t.Fatal(err)
		}
		res, err := ReplayAtLoad(e, a, trace, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.IOPS
	}
	full := measure(1.0)
	if full <= 0 {
		t.Fatal("no throughput at 100%")
	}
	for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		got := measure(p) / full
		if math.Abs(got-p) > 0.05*p+0.01 {
			t.Errorf("configured %v, measured proportion %.4f", p, got)
		}
	}
}

func TestReplayFilteredStampsName(t *testing.T) {
	e := simtime.NewEngine()
	dev := &fixedLatencyDevice{engine: e, latency: simtime.Microsecond}
	res, err := ReplayFiltered(e, dev, makeTrace(50), UniformFilter{Proportion: 0.2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Filter != "uniform-20%" {
		t.Fatalf("Filter = %q", res.Filter)
	}
	if res.Issued != 10 {
		t.Fatalf("Issued = %d, want 10", res.Issued)
	}
}

func BenchmarkReplay4KTrace(b *testing.B) {
	tr := makeTrace(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := simtime.NewEngine()
		a, err := raid.NewHDDArray(e, raid.DefaultParams(), 6, disksim.Seagate7200())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Replay(e, a, tr, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
