// Package replay implements TRACER's core contribution: load-controllable
// block-level trace replay (paper Section IV).
//
// The workload-control module scales a trace's I/O intensity to any
// configured load proportion by *uniformly* selecting bunches inside
// fixed-size bunch groups and replaying only those, at their original
// timestamps.  Uniform — not random — selection preserves the crests
// and troughs of the original workload, which is what makes the scaled
// replay representative.  A supplementary inter-arrival scaler supports
// intensities above 100% (paper Fig. 2: 200%, 1000%) by compressing or
// stretching the timeline instead.
package replay

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/blktrace"
	"repro/internal/simtime"
)

// DefaultGroupSize is the bunch-group length the paper uses: every 10
// consecutive bunches form one group (Section IV-A).
const DefaultGroupSize = 10

// Filter reduces or reshapes a trace before replay.
type Filter interface {
	// Apply returns a new trace; the input is not modified.
	Apply(t *blktrace.Trace) *blktrace.Trace
	// Name identifies the filter in reports.
	Name() string
}

// UniformFilter is the paper's filter algorithm: partition bunches into
// groups of GroupSize and select k = round(Proportion*GroupSize)
// bunches per group at uniformly spaced positions (Fig. 5: 10% selects
// the 10th bunch of each group; 20% the 5th and 10th; and so on).
// Selected bunches keep their original timestamps.
type UniformFilter struct {
	// Proportion is the configured load proportion in (0, 1].
	Proportion float64
	// GroupSize is the bunch-group length; zero means DefaultGroupSize.
	GroupSize int
}

// Name implements Filter.
func (f UniformFilter) Name() string {
	return fmt.Sprintf("uniform-%d%%", int(math.Round(f.Proportion*100)))
}

// selectIndices returns the uniformly spaced 0-based indices chosen
// from a group of size g at proportion p: {ceil?} the paper's pattern
// is index floor(m*g/k)-1 for m = 1..k, which selects the last bunch
// at 10% and spreads evenly elsewhere.
func selectIndices(g int, p float64) []int {
	if g <= 0 {
		return nil
	}
	k := int(math.Round(p * float64(g)))
	if p > 0 && k == 0 {
		// Never round a positive proportion down to nothing for full
		// groups; tiny proportions still replay something.
		k = 1
	}
	if k > g {
		k = g
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, 0, k)
	prev := -1
	for m := 1; m <= k; m++ {
		i := m*g/k - 1
		if i <= prev { // guarantee distinctness for awkward g/k ratios
			i = prev + 1
		}
		if i >= g {
			i = g - 1
		}
		idx = append(idx, i)
		prev = i
	}
	return idx
}

// Apply implements Filter.
func (f UniformFilter) Apply(t *blktrace.Trace) *blktrace.Trace {
	g := f.GroupSize
	if g <= 0 {
		g = DefaultGroupSize
	}
	p := f.Proportion
	if p >= 1 {
		return t.Clone()
	}
	if p <= 0 {
		return &blktrace.Trace{Device: t.Device}
	}
	out := &blktrace.Trace{Device: t.Device}
	for start := 0; start < len(t.Bunches); start += g {
		end := start + g
		if end > len(t.Bunches) {
			end = len(t.Bunches)
		}
		for _, i := range selectIndices(end-start, p) {
			b := t.Bunches[start+i]
			out.Bunches = append(out.Bunches, blktrace.Bunch{
				Time:     b.Time,
				Packages: append([]blktrace.IOPackage(nil), b.Packages...),
			})
		}
	}
	return out
}

// RandomFilter is the design the paper rejects: select each bunch
// independently with probability Proportion (global Bernoulli
// sampling).  The selected count is only correct in expectation, so
// per-window retention varies binomially and the workload's wave
// crests and troughs get distorted (Section IV-A).  It is kept as the
// ablation baseline against UniformFilter.
type RandomFilter struct {
	// Proportion is the configured load proportion in (0, 1].
	Proportion float64
	// Seed makes selection reproducible.
	Seed uint64
}

// Name implements Filter.
func (f RandomFilter) Name() string {
	return fmt.Sprintf("random-%d%%", int(math.Round(f.Proportion*100)))
}

// Apply implements Filter.
func (f RandomFilter) Apply(t *blktrace.Trace) *blktrace.Trace {
	p := f.Proportion
	if p >= 1 {
		return t.Clone()
	}
	if p <= 0 {
		return &blktrace.Trace{Device: t.Device}
	}
	rng := rand.New(rand.NewPCG(f.Seed, 0xf117e2))
	out := &blktrace.Trace{Device: t.Device}
	for _, b := range t.Bunches {
		if rng.Float64() >= p {
			continue
		}
		out.Bunches = append(out.Bunches, blktrace.Bunch{
			Time:     b.Time,
			Packages: append([]blktrace.IOPackage(nil), b.Packages...),
		})
	}
	return out
}

// IntervalScaler rescales inter-arrival times so the replayed intensity
// becomes Intensity times the original (paper Fig. 2: 1%–1000%).  All
// bunches are kept; only the timeline stretches (Intensity < 1) or
// compresses (Intensity > 1).
type IntervalScaler struct {
	// Intensity is the target relative intensity; 2.0 replays twice as
	// fast, 0.1 at a tenth of the rate.
	Intensity float64
}

// Name implements Filter.
func (s IntervalScaler) Name() string {
	return fmt.Sprintf("scale-%d%%", int(math.Round(s.Intensity*100)))
}

// Apply implements Filter.
func (s IntervalScaler) Apply(t *blktrace.Trace) *blktrace.Trace {
	if s.Intensity <= 0 {
		return &blktrace.Trace{Device: t.Device}
	}
	out := t.Clone()
	for i := range out.Bunches {
		secs := out.Bunches[i].Time.Seconds() / s.Intensity
		out.Bunches[i].Time = simtime.FromSeconds(secs)
	}
	return out
}

// Identity passes the trace through unchanged (100% load).
type Identity struct{}

// Name implements Filter.
func (Identity) Name() string { return "identity" }

// Apply implements Filter.
func (Identity) Apply(t *blktrace.Trace) *blktrace.Trace { return t.Clone() }

// Chain applies filters left to right.
type Chain []Filter

// Name implements Filter.
func (c Chain) Name() string {
	name := ""
	for i, f := range c {
		if i > 0 {
			name += "+"
		}
		name += f.Name()
	}
	return name
}

// Apply implements Filter.
func (c Chain) Apply(t *blktrace.Trace) *blktrace.Trace {
	out := t
	for _, f := range c {
		out = f.Apply(out)
	}
	if out == t {
		out = t.Clone()
	}
	return out
}
