package cache

import (
	"repro/internal/simtime"
	"repro/internal/storage"
)

// Dirty-data management.  Dirty lines sit in a FIFO ordered by the
// time they first became dirty; three policies drain it:
//
//   - threshold: crossing the DirtyHighRatio high-water mark drains
//     the oldest dirty lines synchronously at submit time,
//   - periodic: a FlushInterval timer flushes everything dirty — armed
//     only while dirty lines exist so an idle cache schedules nothing
//     and the engine can drain,
//   - idle: once the front has been quiet for IdleDrain, all dirty
//     lines flush.  This is the policy that couples with conserve
//     spin-down timers: a drain shorter than the disk timeout keeps
//     the array awake; a longer one lets disks spin down and then
//     wakes them for the deferred writes.
//
// FIFO entries are (slot, seq) pairs; a writeback or eviction bumps
// the line's dirtySeq, so stale entries are skipped on pop rather than
// flushing data that was re-dirtied later (which has its own entry).

// markDirty grows slot's dirty union by [lo, hi) and runs the
// threshold policy.  BytesDirtied counts union growth — including gap
// bytes bridged between disjoint fragments, since the writeback IO
// covers the whole union — keeping the conservation invariant exact.
func (c *Cache) markDirty(slot int, lo, hi int64, now simtime.Time) {
	ln := &c.lines[slot]
	var growth int64
	if !ln.dirty() {
		ln.dirtyLo, ln.dirtyHi = lo, hi
		growth = hi - lo
		c.dirtySeq++
		ln.dirtySeq = c.dirtySeq
		c.dirtyQueue = append(c.dirtyQueue, dirtyRef{slot: slot, seq: ln.dirtySeq})
		c.dirtyLines++
	} else {
		old := ln.dirtyHi - ln.dirtyLo
		if lo < ln.dirtyLo {
			ln.dirtyLo = lo
		}
		if hi > ln.dirtyHi {
			ln.dirtyHi = hi
		}
		growth = (ln.dirtyHi - ln.dirtyLo) - old
	}
	c.stats.BytesDirtied += growth
	c.stats.DirtyBytes += growth
	if c.tel != nil {
		c.tel.OnDirty(growth)
	}
	c.armFlush()
	for c.dirtyLines > c.dirtyHigh {
		s := c.popDirty()
		if s < 0 {
			break
		}
		c.stats.ThresholdDrains++
		c.issueWriteback(s, now)
	}
}

// popDirty returns the oldest still-dirty slot, skipping entries
// staled by earlier writebacks, or -1 when the queue is empty.
func (c *Cache) popDirty() int {
	for len(c.dirtyQueue) > 0 {
		ref := c.dirtyQueue[0]
		c.dirtyQueue = c.dirtyQueue[1:]
		if ln := &c.lines[ref.slot]; ln.valid && ln.dirty() && ln.dirtySeq == ref.seq {
			return ref.slot
		}
	}
	return -1
}

// issueWriteback writes slot's dirty union to the backing device and
// marks the line clean.  The line stays resident; only evictions drop
// it.
func (c *Cache) issueWriteback(slot int, now simtime.Time) {
	ln := &c.lines[slot]
	if !ln.dirty() {
		return
	}
	n := ln.dirtyHi - ln.dirtyLo
	req := storage.Request{
		Op:     storage.Write,
		Offset: ln.extent*c.params.ExtentBytes + ln.dirtyLo,
		Size:   n,
	}
	ln.dirtyLo, ln.dirtyHi = 0, 0
	ln.dirtySeq = 0
	c.dirtyLines--
	c.stats.DirtyBytes -= n
	c.stats.Writebacks++
	c.stats.WritebackBytes += n
	c.outstandingWB++
	if c.tel != nil {
		c.tel.OnWriteback(n)
	}
	c.submitBacking(req, func(simtime.Time) { c.outstandingWB-- })
}

// flushAll writes back every dirty line, oldest first.
func (c *Cache) flushAll(now simtime.Time) {
	for {
		s := c.popDirty()
		if s < 0 {
			return
		}
		c.issueWriteback(s, now)
	}
}

// armFlush schedules the periodic flush if dirty data exists and no
// timer is pending.
func (c *Cache) armFlush() {
	if c.flushArmed || c.params.FlushInterval <= 0 || c.dirtyLines == 0 {
		return
	}
	c.flushArmed = true
	c.engine.AfterEvent(c.params.FlushInterval, c, simtime.EventArg{Kind: kindFlush})
}

// armIdle schedules an idle drain for the current request generation;
// any later Submit bumps the generation and stales the event.
func (c *Cache) armIdle() {
	if c.params.IdleDrain <= 0 || c.dirtyLines == 0 {
		return
	}
	c.engine.AfterEvent(c.params.IdleDrain, c, simtime.EventArg{Kind: kindIdle, I64: c.idleGen})
}
