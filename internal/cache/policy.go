package cache

import (
	"repro/internal/simtime"
	"repro/internal/storage"
)

// Admission, eviction and placement policies.  Sets are small (Ways is
// 8 by default) so victim selection is a linear scan — deterministic,
// allocation-free, and cheap enough for the replay hot path.

// lookup finds the slot holding extent, if resident.
func (c *Cache) lookup(extent int64) (int, bool) {
	set := int(extent % int64(c.numSets))
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if ln := &c.lines[base+w]; ln.valid && ln.extent == extent {
			return base + w, true
		}
	}
	return 0, false
}

// admit decides whether a missed extent should be installed.
func (c *Cache) admit(req storage.Request, extent int64) bool {
	switch c.params.Admission {
	case "zone":
		// Prefix/zone admission: cache only the leading region of the
		// backing address space (hot file-system metadata and small
		// files live low in FIU-style traces).
		return extent*c.params.ExtentBytes < c.params.AdmitZoneBytes
	case "bypass-seq":
		// Large transfers and long sequential runs stream efficiently
		// from the backing array; caching them only causes pollution.
		return req.Size < c.params.BypassBytes && c.runBytes < c.params.BypassBytes
	default: // "always"
		return true
	}
}

// touch records a reference for the eviction policy.
func (c *Cache) touch(slot int) {
	ln := &c.lines[slot]
	c.useTick++
	ln.lastUse = c.useTick
	switch c.params.Eviction {
	case "clock":
		ln.ref = true
	case "2q":
		// Segmented LRU: a re-referenced probationary line promotes
		// into the protected segment, bounded at half the ways; the
		// LRU protected line demotes to make room.
		if !ln.hot {
			ln.hot = true
			c.boundProtected(slot)
		}
	}
}

// boundProtected demotes the LRU protected line of promoted's set when
// the protected segment exceeds half the associativity.
func (c *Cache) boundProtected(promoted int) {
	set := promoted / c.ways
	base := set * c.ways
	limit := c.ways / 2
	if limit < 1 {
		limit = 1
	}
	hot := 0
	victim, victimUse := -1, uint64(0)
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[base+w]
		if !ln.valid || !ln.hot {
			continue
		}
		hot++
		if base+w == promoted {
			continue
		}
		if victim < 0 || ln.lastUse < victimUse {
			victim, victimUse = base+w, ln.lastUse
		}
	}
	if hot > limit && victim >= 0 {
		c.lines[victim].hot = false
	}
}

// victim picks the way to displace in set (all ways valid).
func (c *Cache) victim(set int) int {
	base := set * c.ways
	switch c.params.Eviction {
	case "clock":
		// Second-chance sweep: clear reference bits until an
		// unreferenced line is found; bounded at two revolutions.
		for i := 0; i < 2*c.ways; i++ {
			w := c.hands[set]
			c.hands[set] = (w + 1) % c.ways
			if ln := &c.lines[base+w]; ln.ref {
				ln.ref = false
			} else {
				return w
			}
		}
		return c.hands[set]
	case "2q":
		// Prefer the LRU probationary line; fall back to the LRU
		// protected line if everything is promoted.
		if w := c.lruWay(set, false); w >= 0 {
			return w
		}
		return c.lruWay(set, true)
	default: // "lru"
		if w := c.lruWay(set, false); w >= 0 {
			return w
		}
		return c.lruWay(set, true)
	}
}

// lruWay returns the least-recently-used way of set among lines with
// the given hot flag, or -1 if none match.  Plain LRU passes hot=false
// then hot=true, which covers all lines (hot is never set by LRU).
func (c *Cache) lruWay(set int, hot bool) int {
	base := set * c.ways
	best, bestUse := -1, uint64(0)
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[base+w]
		if !ln.valid || ln.hot != hot {
			continue
		}
		if best < 0 || ln.lastUse < bestUse {
			best, bestUse = w, ln.lastUse
		}
	}
	return best
}

// install places extent into its set, evicting a victim if the set is
// full (issuing a writeback first when the victim is dirty), and
// returns the slot.
func (c *Cache) install(extent int64, now simtime.Time) int {
	set := int(extent % int64(c.numSets))
	base := set * c.ways
	way := -1
	for w := 0; w < c.ways; w++ {
		if !c.lines[base+w].valid {
			way = w
			break
		}
	}
	if way < 0 {
		way = c.victim(set)
		ln := &c.lines[base+way]
		wasDirty := ln.dirty()
		c.stats.Evictions++
		if wasDirty {
			c.stats.DirtyEvictions++
			c.issueWriteback(base+way, now)
		}
		if c.tel != nil {
			c.tel.OnEviction(wasDirty)
		}
		c.stats.Occupancy--
		ln.valid = false
	}
	slot := base + way
	ln := &c.lines[slot]
	c.useTick++
	*ln = line{extent: extent, lastUse: c.useTick, ref: true, valid: true}
	c.stats.Installs++
	c.stats.Occupancy++
	if c.stats.Occupancy > c.stats.MaxOccupancy {
		c.stats.MaxOccupancy = c.stats.Occupancy
	}
	if c.tel != nil {
		c.tel.OnInstall()
	}
	return slot
}
