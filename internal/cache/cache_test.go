package cache

import (
	"strings"
	"testing"

	"repro/internal/powersim"
	"repro/internal/simtime"
	"repro/internal/storage"
)

// fakeDev is a scripted backing device: fixed latency, records every
// request it receives.
type fakeDev struct {
	engine   *simtime.Engine
	capacity int64
	latency  simtime.Duration
	reqs     []storage.Request
}

func (d *fakeDev) Submit(req storage.Request, done func(simtime.Time)) {
	d.reqs = append(d.reqs, req)
	finish := d.engine.Now().Add(d.latency)
	d.engine.Schedule(finish, func() { done(finish) })
}

func (d *fakeDev) Capacity() int64 { return d.capacity }

func (d *fakeDev) countOp(op storage.Op) int {
	n := 0
	for _, r := range d.reqs {
		if r.Op == op {
			n++
		}
	}
	return n
}

func newTestCache(t *testing.T, p Params) (*simtime.Engine, *fakeDev, *Cache) {
	t.Helper()
	engine := simtime.NewEngine()
	dev := &fakeDev{engine: engine, capacity: 1 << 30, latency: 5 * simtime.Millisecond}
	src := powersim.NewTimeline(10)
	c, err := New(engine, dev, src, p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return engine, dev, c
}

func dramParams() Params {
	return Params{Tier: TierDRAM, CapacityBytes: 1 << 20} // 16 lines at 64 KiB
}

func submit(t *testing.T, engine *simtime.Engine, c *Cache, op storage.Op, off, size int64) simtime.Time {
	t.Helper()
	var finish simtime.Time
	fired := 0
	c.Submit(storage.Request{Op: op, Offset: off, Size: size}, func(at simtime.Time) {
		finish = at
		fired++
	})
	engine.Run()
	if fired != 1 {
		t.Fatalf("done fired %d times, want 1", fired)
	}
	return finish
}

func TestBadParams(t *testing.T) {
	engine := simtime.NewEngine()
	dev := &fakeDev{engine: engine, capacity: 1 << 30, latency: simtime.Microsecond}
	cases := []struct {
		p    Params
		want string
	}{
		{Params{Tier: "tape", CapacityBytes: 1 << 20}, "unknown tier"},
		{Params{Tier: TierDRAM, CapacityBytes: 1 << 20, Admission: "maybe"}, "unknown admission"},
		{Params{Tier: TierDRAM, CapacityBytes: 1 << 20, Eviction: "fifo"}, "unknown eviction"},
		{Params{Tier: TierDRAM, CapacityBytes: -1}, "negative capacity"},
		{Params{Tier: TierDRAM, CapacityBytes: 1 << 10}, "below one"},
	}
	for _, tc := range cases {
		_, err := New(engine, dev, nil, tc.p)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("New(%+v) error = %v, want containing %q", tc.p, err, tc.want)
		}
	}
}

func TestPassthroughAddsNothing(t *testing.T) {
	engine, dev, c := newTestCache(t, Params{Tier: TierNone})
	if !c.Passthrough() {
		t.Fatal("tier none should be a pass-through")
	}
	// PowerSource must be the backing source itself, not a wrapper.
	if _, ok := c.PowerSource().(*powersim.Timeline); !ok {
		t.Fatalf("pass-through PowerSource = %T, want the backing *powersim.Timeline", c.PowerSource())
	}
	submit(t, engine, c, storage.Read, 0, 4096)
	if len(dev.reqs) != 1 {
		t.Fatalf("backing saw %d requests, want 1", len(dev.reqs))
	}
	if got := c.Stats(); got.Requests != 0 {
		t.Fatalf("pass-through recorded stats: %+v", got)
	}
	// Zero capacity behaves identically.
	_, _, c2 := newTestCache(t, Params{Tier: TierDRAM, CapacityBytes: 0})
	if !c2.Passthrough() {
		t.Fatal("zero capacity should be a pass-through")
	}
}

func TestReadMissThenHit(t *testing.T) {
	engine, dev, c := newTestCache(t, dramParams())
	f1 := submit(t, engine, c, storage.Read, 0, 4096)
	if got := dev.countOp(storage.Read); got != 1 {
		t.Fatalf("backing reads after miss = %d, want 1", got)
	}
	f2 := submit(t, engine, c, storage.Read, 0, 4096)
	if got := dev.countOp(storage.Read); got != 1 {
		t.Fatalf("backing reads after hit = %d, want 1 (hit must not reach backing)", got)
	}
	if f2 <= f1 {
		t.Fatal("hit completion time not advancing")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Installs != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 install", st)
	}
	if err := c.CheckInvariants(engine.Now()); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAllocateAndDrain(t *testing.T) {
	engine, dev, c := newTestCache(t, dramParams())
	submit(t, engine, c, storage.Write, 64<<10, 8192)
	st := c.Stats()
	if st.BytesDirtied != 8192 {
		t.Fatalf("BytesDirtied = %d, want 8192", st.BytesDirtied)
	}
	// The engine drained, so the idle-drain policy must have written
	// everything back.
	if st.DirtyBytes != 0 {
		t.Fatalf("DirtyBytes = %d after drain, want 0", st.DirtyBytes)
	}
	if st.WritebackBytes != 8192 {
		t.Fatalf("WritebackBytes = %d, want 8192", st.WritebackBytes)
	}
	if got := dev.countOp(storage.Write); got != 1 {
		t.Fatalf("backing writes = %d, want exactly the writeback", got)
	}
	// No fill read: write-allocate tracks the dirty union instead.
	if got := dev.countOp(storage.Read); got != 0 {
		t.Fatalf("backing reads = %d, want 0 for a write miss", got)
	}
	if err := c.CheckInvariants(engine.Now()); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyUnionCoalescesWrites(t *testing.T) {
	p := dramParams()
	p.IdleDrain = 10 * simtime.Second // keep dirty while we write twice
	engine, dev, c := newTestCache(t, p)
	c.Submit(storage.Request{Op: storage.Write, Offset: 0, Size: 4096}, func(simtime.Time) {})
	c.Submit(storage.Request{Op: storage.Write, Offset: 60 << 10, Size: 4096}, func(simtime.Time) {})
	engine.Run()
	st := c.Stats()
	// Union is the whole extent: 4k + (64k-4k) growth.
	if st.BytesDirtied != 64<<10 {
		t.Fatalf("BytesDirtied = %d, want %d (union growth)", st.BytesDirtied, 64<<10)
	}
	if st.Writebacks != 1 {
		t.Fatalf("Writebacks = %d, want 1 coalesced IO", st.Writebacks)
	}
	if got := dev.countOp(storage.Write); got != 1 {
		t.Fatalf("backing writes = %d, want 1", got)
	}
	if st.BytesDirtied != st.WritebackBytes+st.DirtyBytes {
		t.Fatalf("conservation violated: %+v", st)
	}
}

func TestThresholdDrain(t *testing.T) {
	p := dramParams()
	p.DirtyHighRatio = 0.25 // 4 of 16 lines
	p.FlushInterval = -1
	p.IdleDrain = -1
	engine, _, c := newTestCache(t, p)
	for i := int64(0); i < 8; i++ {
		c.Submit(storage.Request{Op: storage.Write, Offset: i * 64 << 10, Size: 4096}, func(simtime.Time) {})
	}
	engine.Run()
	st := c.Stats()
	if st.ThresholdDrains == 0 {
		t.Fatalf("no threshold drains at 8 dirty lines over a 4-line high-water mark: %+v", st)
	}
	if c.dirtyLines > 4 {
		t.Fatalf("dirty lines %d stayed above high-water mark 4", c.dirtyLines)
	}
	if st.BytesDirtied != st.WritebackBytes+st.DirtyBytes {
		t.Fatalf("conservation violated: %+v", st)
	}
}

func TestPeriodicFlushTerminates(t *testing.T) {
	p := dramParams()
	p.FlushInterval = simtime.Second / 10
	p.IdleDrain = -1 // isolate the periodic policy
	engine, _, c := newTestCache(t, p)
	submit(t, engine, c, storage.Write, 0, 4096)
	// engine.Run returned, so the timer did not re-arm forever.
	st := c.Stats()
	if st.FlushCycles != 1 || st.DirtyBytes != 0 {
		t.Fatalf("stats = %+v, want one flush cycle and no dirty bytes", st)
	}
	if engine.Pending() != 0 {
		t.Fatalf("%d events still pending after drain", engine.Pending())
	}
}

func TestIdleDrainStaleGeneration(t *testing.T) {
	p := dramParams()
	p.FlushInterval = -1
	p.IdleDrain = simtime.Second
	engine, _, c := newTestCache(t, p)
	c.Submit(storage.Request{Op: storage.Write, Offset: 0, Size: 4096}, func(simtime.Time) {})
	// A second write lands before the first idle timer fires; the
	// first arming must be a stale no-op and the second must drain.
	engine.Schedule(engine.Now().Add(simtime.Second/2), func() {
		c.Submit(storage.Request{Op: storage.Write, Offset: 128 << 10, Size: 4096}, func(simtime.Time) {})
	})
	engine.Run()
	st := c.Stats()
	if st.IdleDrains != 1 {
		t.Fatalf("IdleDrains = %d, want exactly 1 (first arming stale)", st.IdleDrains)
	}
	if st.DirtyBytes != 0 {
		t.Fatalf("DirtyBytes = %d after drain, want 0", st.DirtyBytes)
	}
}

func TestZoneAdmission(t *testing.T) {
	p := dramParams()
	p.Admission = "zone"
	p.AdmitZoneBytes = 256 << 10 // first 4 extents
	engine, dev, c := newTestCache(t, p)
	submit(t, engine, c, storage.Read, 0, 4096)        // in zone: install
	submit(t, engine, c, storage.Read, 512<<10, 4096)  // out of zone: bypass
	submit(t, engine, c, storage.Read, 512<<10, 4096)  // still a miss
	st := c.Stats()
	if st.Installs != 1 {
		t.Fatalf("Installs = %d, want 1 (zone policy)", st.Installs)
	}
	if st.Bypassed != 2 {
		t.Fatalf("Bypassed = %d, want 2", st.Bypassed)
	}
	if got := dev.countOp(storage.Read); got != 3 {
		t.Fatalf("backing reads = %d, want 3", got)
	}
}

func TestBypassLargeSequential(t *testing.T) {
	p := dramParams()
	p.Admission = "bypass-seq"
	p.BypassBytes = 128 << 10
	engine, _, c := newTestCache(t, p)
	// One large write: bypassed entirely.
	submit(t, engine, c, storage.Write, 0, 256<<10)
	if st := c.Stats(); st.Installs != 0 {
		t.Fatalf("large write installed %d lines, want 0", st.Installs)
	}
	// Small random write: admitted.
	submit(t, engine, c, storage.Write, 10<<20, 4096)
	if st := c.Stats(); st.Installs != 1 {
		t.Fatalf("small write installs = %d, want 1", st.Installs)
	}
	// Sequential run of small writes crosses the run threshold and
	// stops installing.
	var off int64 = 100 << 20
	for i := 0; i < 64; i++ {
		submit(t, engine, c, storage.Write, off, 4096)
		off += 4096
	}
	st := c.Stats()
	if st.Installs >= 40 {
		t.Fatalf("sequential run kept installing (%d installs)", st.Installs)
	}
}

func TestSSDTier(t *testing.T) {
	engine, dev, c := newTestCache(t, Params{Tier: TierSSD, CapacityBytes: 8 << 20})
	if c.SSD() == nil {
		t.Fatal("SSD tier did not build an SSD device")
	}
	f1 := submit(t, engine, c, storage.Read, 0, 4096)
	f2 := submit(t, engine, c, storage.Read, 0, 4096)
	if got := dev.countOp(storage.Read); got != 1 {
		t.Fatalf("backing reads = %d, want 1", got)
	}
	if f2.Sub(f1) <= 0 {
		t.Fatal("SSD hit did not advance the clock")
	}
	if c.SSD().ServedOps() == 0 {
		t.Fatal("SSD tier served no ops")
	}
	if err := c.CheckInvariants(engine.Now()); err != nil {
		t.Fatal(err)
	}
}

func TestPowerSourceSumsTier(t *testing.T) {
	_, _, c := newTestCache(t, dramParams())
	src := c.PowerSource()
	t0, t1 := simtime.Time(0), simtime.Time(0).Add(10*simtime.Second)
	// Backing timeline is 10 W; 1 MiB DRAM at 0.375 W/GB adds a tiny
	// static draw on top.
	got := src.MeanWatts(t0, t1)
	want := 10 + float64(1<<20)/float64(1<<30)*0.375
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("MeanWatts = %v, want %v", got, want)
	}
}
