package cache

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/disksim"
	"repro/internal/powersim"
	"repro/internal/raid"
	"repro/internal/replay"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/synth"
)

// Satellite properties: write conservation (bytes admitted dirty ==
// bytes written back + bytes still dirty at drain), no eviction policy
// ever exceeds the configured capacity, and a zero-capacity cache is a
// byte-identical pass-through of the uncached system.

// randomWorkload drives n seeded random requests through c and runs
// the engine to drain after each.
func randomWorkload(t *testing.T, engine *simtime.Engine, c *Cache, seed uint64, n int) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0xcafe))
	for i := 0; i < n; i++ {
		op := storage.Read
		if rng.Float64() < 0.5 {
			op = storage.Write
		}
		off := rng.Int64N(64 << 20)
		size := int64(1+rng.IntN(64)) * 4096
		fired := 0
		c.Submit(storage.Request{Op: op, Offset: off, Size: size}, func(simtime.Time) { fired++ })
		// Randomly interleave: half the time let everything drain,
		// otherwise keep requests in flight.
		if rng.IntN(2) == 0 {
			engine.Run()
		}
		_ = fired
	}
	engine.Run()
}

func TestPropertyWriteConservation(t *testing.T) {
	for _, evict := range []string{"lru", "2q", "clock"} {
		for _, admission := range []string{"always", "zone", "bypass-seq"} {
			for seed := uint64(1); seed <= 5; seed++ {
				name := fmt.Sprintf("%s/%s/seed%d", evict, admission, seed)
				t.Run(name, func(t *testing.T) {
					engine := simtime.NewEngine()
					dev := &fakeDev{engine: engine, capacity: 32 << 20, latency: 2 * simtime.Millisecond}
					c, err := New(engine, dev, powersim.NewTimeline(5), Params{
						Tier:          TierDRAM,
						CapacityBytes: 2 << 20, // 32 lines: small enough to force evictions
						Eviction:      evict,
						Admission:     admission,
					})
					if err != nil {
						t.Fatal(err)
					}
					randomWorkload(t, engine, c, seed, 400)
					st := c.Stats()
					if st.BytesDirtied != st.WritebackBytes+st.DirtyBytes {
						t.Fatalf("conservation violated: dirtied %d != written back %d + dirty %d",
							st.BytesDirtied, st.WritebackBytes, st.DirtyBytes)
					}
					if st.DirtyBytes != 0 {
						t.Fatalf("%d bytes still dirty after full drain", st.DirtyBytes)
					}
					if err := c.CheckInvariants(engine.Now()); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

func TestPropertyCapacityNeverExceeded(t *testing.T) {
	for _, evict := range []string{"lru", "2q", "clock"} {
		t.Run(evict, func(t *testing.T) {
			engine := simtime.NewEngine()
			dev := &fakeDev{engine: engine, capacity: 256 << 20, latency: simtime.Millisecond}
			c, err := New(engine, dev, powersim.NewTimeline(5), Params{
				Tier:          TierDRAM,
				CapacityBytes: 1 << 20, // 16 lines
				Eviction:      evict,
			})
			if err != nil {
				t.Fatal(err)
			}
			randomWorkload(t, engine, c, 99, 600)
			st := c.Stats()
			if st.MaxOccupancy > c.capacityLines {
				t.Fatalf("%s: max occupancy %d exceeded capacity %d lines", evict, st.MaxOccupancy, c.capacityLines)
			}
			if st.Evictions == 0 {
				t.Fatalf("%s: workload never evicted; property vacuous", evict)
			}
			if err := c.CheckInvariants(engine.Now()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPropertyZeroCapacityPassthrough replays the same trace against a
// bare array and a zero-capacity cached array: every observable —
// replay result JSON and metered power samples — must be byte-for-byte
// identical.
func TestPropertyZeroCapacityPassthrough(t *testing.T) {
	trace := synth.WebServerTrace(synth.WebServerParams{
		Seed: 11, Duration: 30 * simtime.Second, MeanIOPS: 50, FootprintBytes: 1 << 30,
	})

	run := func(cached bool) ([]byte, []byte) {
		engine := simtime.NewEngine()
		array, err := raid.NewHDDArray(engine, raid.DefaultParams(), 4, disksim.Seagate7200())
		if err != nil {
			t.Fatal(err)
		}
		var dev storage.Device = array
		var src powersim.Source = array.PowerSource()
		if cached {
			c, err := New(engine, array, array.PowerSource(), Params{Tier: TierDRAM, CapacityBytes: 0})
			if err != nil {
				t.Fatal(err)
			}
			dev, src = c, c.PowerSource()
		}
		res, err := replay.Replay(engine, dev, trace, replay.Options{})
		if err != nil {
			t.Fatal(err)
		}
		resJSON, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		meter := powersim.DefaultMeter(src)
		samples, err := json.Marshal(meter.Measure(res.Start, res.End))
		if err != nil {
			t.Fatal(err)
		}
		return resJSON, samples
	}

	baseRes, baseSamples := run(false)
	cachedRes, cachedSamples := run(true)
	if !bytes.Equal(baseRes, cachedRes) {
		t.Fatal("zero-capacity cache changed the replay result")
	}
	if !bytes.Equal(baseSamples, cachedSamples) {
		t.Fatal("zero-capacity cache changed the metered power samples")
	}
}
