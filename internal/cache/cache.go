// Package cache implements a sim-time writeback cache tier that sits
// between replay admission and a backing storage device (typically a
// raid.Array), running on the shared simtime.Engine so it composes
// with every existing experiment driver.
//
// The model is a set-associative cache over fixed-size extents with
// pluggable admission (always, prefix zone, bypass-large-sequential),
// eviction (LRU, segmented-LRU/2Q, CLOCK) and dirty-writeback policies
// (high-water threshold, periodic flush, idle drain).  Two tier
// variants are supported: a DRAM tier whose service time is a fixed
// access latency plus transfer at a configured bandwidth and whose
// energy is a static per-GB power coefficient, and an SSD tier backed
// by the disksim flash service-time model so cache device time and
// energy are simulated rather than assumed.
//
// Writebacks are the interesting energy coupling: a cache that absorbs
// writes and drains them lazily reshapes the idle-interval distribution
// the conserve spin-down policies feed on.  The dirty bookkeeping is
// therefore exact — integer byte counts with a conservation invariant
// (BytesDirtied == WritebackBytes + DirtyBytes at every event boundary)
// enforced by CheckInvariants and the internal/check harness.
//
// A zero-capacity (or Tier "none") cache is a strict pass-through: it
// forwards Submit to the backing device without scheduling any event
// and reports the backing power source unchanged, so cached and
// uncached systems are byte-identical in that configuration.
package cache

import (
	"fmt"

	"repro/internal/disksim"
	"repro/internal/powersim"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// DefaultExtentBytes is the cache line granularity; 64 KiB matches the
// conserve JBOD chunk size so a cached extent maps onto one chunk.
const DefaultExtentBytes = 64 << 10

// Tier names accepted by Params.Tier.
const (
	TierNone = "none"
	TierDRAM = "dram"
	TierSSD  = "ssd"
)

// Params configure a cache tier.  Zero values take the documented
// defaults; Tier "none" or CapacityBytes 0 yields a pass-through.
type Params struct {
	// Tier selects the cache device model: "none", "dram" or "ssd".
	Tier string
	// CapacityBytes is the cache size.  0 disables the cache.
	CapacityBytes int64
	// ExtentBytes is the line granularity (default 64 KiB).
	ExtentBytes int64
	// Ways is the set associativity (default 8).
	Ways int
	// Admission picks the install policy for missed extents:
	// "always" (default), "zone" (admit only the leading
	// AdmitZoneBytes of the backing address space) or "bypass-seq"
	// (bypass large or sequentially-continued requests).
	Admission string
	// AdmitZoneBytes bounds the "zone" policy; 0 means a quarter of
	// the backing capacity.
	AdmitZoneBytes int64
	// BypassBytes is the "bypass-seq" size/run threshold (default 1 MiB).
	BypassBytes int64
	// Eviction picks the victim policy: "lru" (default), "2q"
	// (segmented LRU) or "clock".
	Eviction string
	// DirtyHighRatio is the dirty-line high-water mark as a fraction
	// of capacity; crossing it drains the oldest dirty lines
	// synchronously (default 0.5; negative disables).
	DirtyHighRatio float64
	// FlushInterval is the periodic writeback cadence (default 1s;
	// negative disables).  The timer is armed only while dirty lines
	// exist so a drained cache schedules nothing.
	FlushInterval simtime.Duration
	// IdleDrain flushes all dirty lines after the front has been idle
	// this long (default 500ms; negative disables).  This is the knob
	// that interacts with conserve spin-down timeouts: a drain that
	// fires just before a disk's timeout keeps it awake.
	IdleDrain simtime.Duration
	// DRAMWattsPerGB is the DRAM tier's static power coefficient
	// (default 0.375 W/GB, a DDR4 DIMM background figure).
	DRAMWattsPerGB float64
	// DRAMAccess is the DRAM tier's fixed per-access latency
	// (default 20µs, covering the full software path).
	DRAMAccess simtime.Duration
	// DRAMBandwidthMBps bounds DRAM transfer (default 12800 MB/s).
	DRAMBandwidthMBps float64
	// SSD parameterizes the SSD tier; a zero value takes
	// disksim.MemorightSLC32 resized to CapacityBytes.
	SSD disksim.SSDParams
}

func (p Params) withDefaults(backingCapacity int64) Params {
	if p.Tier == "" {
		p.Tier = TierNone
	}
	if p.ExtentBytes == 0 {
		p.ExtentBytes = DefaultExtentBytes
	}
	if p.Ways == 0 {
		p.Ways = 8
	}
	if p.Admission == "" {
		p.Admission = "always"
	}
	if p.AdmitZoneBytes == 0 && backingCapacity > 0 {
		p.AdmitZoneBytes = backingCapacity / 4
	}
	if p.BypassBytes == 0 {
		p.BypassBytes = 1 << 20
	}
	if p.Eviction == "" {
		p.Eviction = "lru"
	}
	if p.DirtyHighRatio == 0 {
		p.DirtyHighRatio = 0.5
	}
	if p.FlushInterval == 0 {
		p.FlushInterval = simtime.Second
	}
	if p.IdleDrain == 0 {
		p.IdleDrain = simtime.Second / 2
	}
	if p.DRAMWattsPerGB == 0 {
		p.DRAMWattsPerGB = 0.375
	}
	if p.DRAMAccess == 0 {
		p.DRAMAccess = 20 * simtime.Microsecond
	}
	if p.DRAMBandwidthMBps == 0 {
		p.DRAMBandwidthMBps = 12800
	}
	return p
}

// Stats accumulate cache accounting.  All fields are exact integers so
// results are byte-identical across worker counts.
type Stats struct {
	// Requests counts front-end Submits.
	Requests int64
	// Hits and Misses count extent-granularity accesses; a request
	// spanning two extents contributes two.
	Hits, Misses int64
	// Bypassed counts missed extents served directly from the backing
	// device without installation.
	Bypassed int64
	// Installs counts lines brought into the cache.
	Installs int64
	// Evictions counts lines displaced to make room; DirtyEvictions
	// is the subset that required a writeback first.
	Evictions, DirtyEvictions int64
	// Writebacks counts writeback IOs issued to the backing device;
	// WritebackBytes is their payload.
	WritebackBytes int64
	Writebacks     int64
	// BytesDirtied is the total growth of dirty unions; DirtyBytes is
	// what currently remains dirty.  The conservation invariant is
	// BytesDirtied == WritebackBytes + DirtyBytes.
	BytesDirtied int64
	DirtyBytes   int64
	// ThresholdDrains, FlushCycles and IdleDrains count writeback
	// policy activations.
	ThresholdDrains, FlushCycles, IdleDrains int64
	// BackingReads and BackingWrites count every operation the cache
	// submits to the backing device (miss fills, bypasses, writebacks,
	// pass-through).  After a drained run they must equal the backing
	// array's own front-served counters — the cross-check the check
	// layer runs.
	BackingReads, BackingWrites int64
	// Occupancy is the current number of valid lines; MaxOccupancy
	// its high-water mark.
	Occupancy, MaxOccupancy int
}

// HitRate reports hits over extent accesses (0 when idle).
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// line is one cache slot.  A line is dirty when dirtyHi > dirtyLo; the
// dirty range is the union of all write fragments since the last
// writeback, so one writeback IO covers everything outstanding.
type line struct {
	extent           int64
	dirtyLo, dirtyHi int64
	dirtySeq         uint64
	lastUse          uint64
	ref              bool // CLOCK reference bit
	hot              bool // 2Q protected segment
	valid            bool
}

func (ln *line) dirty() bool { return ln.dirtyHi > ln.dirtyLo }

// dirtyRef is a dirty-FIFO entry; it matches its line only while the
// line's dirtySeq is unchanged, so entries staled by writebacks or
// evictions are skipped rather than re-flushing fresh data.
type dirtyRef struct {
	slot int
	seq  uint64
}

// frontOp tracks one front-end request split across tier accesses and
// backing reads; the last completion fires done.
type frontOp struct {
	pending int
	hit     bool
	start   simtime.Time
	done    func(simtime.Time)
}

// Event kinds for the cache's simtime.Handler.
const (
	kindTierDone = iota // DRAM access complete; Ptr is the *frontOp
	kindFlush           // periodic flush timer
	kindIdle            // idle-drain timer; I64 is the arming generation
)

// Cache is a writeback cache tier implementing storage.Device in front
// of a backing device.  Not safe for concurrent use; like every other
// device model it belongs to exactly one engine.
type Cache struct {
	engine     *simtime.Engine
	backing    storage.Device
	backingSrc powersim.Source
	params     Params

	passthrough   bool
	numSets, ways int
	capacityLines int
	dirtyHigh     int // dirty-line count above which the threshold drains
	lines         []line
	hands         []int // per-set CLOCK hands

	dram        *powersim.Timeline
	dramStaticW float64
	ssd         *disksim.SSD

	dirtyQueue []dirtyRef
	dirtyLines int
	dirtySeq   uint64
	useTick    uint64

	inflight      int
	outstandingWB int
	flushArmed    bool
	idleGen       int64

	lastEnd  int64 // sequential-run detection for bypass-seq
	runBytes int64

	stats Stats
	tel   *telemetry.CacheProbe
}

// New builds a cache tier in front of backing on engine.  backingSrc
// is the backing system's power source; PowerSource sums it with the
// tier's own draw (and returns it unchanged for a pass-through).
func New(engine *simtime.Engine, backing storage.Device, backingSrc powersim.Source, p Params) (*Cache, error) {
	p = p.withDefaults(backing.Capacity())
	c := &Cache{engine: engine, backing: backing, backingSrc: backingSrc, params: p}
	switch p.Tier {
	case TierNone, TierDRAM, TierSSD:
	default:
		return nil, fmt.Errorf("cache: unknown tier %q (want none, dram or ssd)", p.Tier)
	}
	switch p.Admission {
	case "always", "zone", "bypass-seq":
	default:
		return nil, fmt.Errorf("cache: unknown admission policy %q (want always, zone or bypass-seq)", p.Admission)
	}
	switch p.Eviction {
	case "lru", "2q", "clock":
	default:
		return nil, fmt.Errorf("cache: unknown eviction policy %q (want lru, 2q or clock)", p.Eviction)
	}
	if p.CapacityBytes < 0 {
		return nil, fmt.Errorf("cache: negative capacity %d", p.CapacityBytes)
	}
	if p.ExtentBytes < 0 {
		return nil, fmt.Errorf("cache: negative extent size %d", p.ExtentBytes)
	}
	if p.Tier == TierNone || p.CapacityBytes == 0 {
		c.passthrough = true
		return c, nil
	}
	c.capacityLines = int(p.CapacityBytes / p.ExtentBytes)
	if c.capacityLines < 1 {
		return nil, fmt.Errorf("cache: capacity %d below one %d-byte extent", p.CapacityBytes, p.ExtentBytes)
	}
	c.ways = p.Ways
	if c.ways > c.capacityLines {
		c.ways = c.capacityLines
	}
	c.numSets = c.capacityLines / c.ways
	c.capacityLines = c.numSets * c.ways
	c.lines = make([]line, c.capacityLines)
	c.hands = make([]int, c.numSets)
	if p.DirtyHighRatio >= 0 {
		c.dirtyHigh = int(p.DirtyHighRatio * float64(c.capacityLines))
	} else {
		c.dirtyHigh = c.capacityLines + 1 // disabled
	}
	switch p.Tier {
	case TierDRAM:
		c.dramStaticW = float64(p.CapacityBytes) / float64(1<<30) * p.DRAMWattsPerGB
		c.dram = powersim.NewTimeline(c.dramStaticW)
	case TierSSD:
		sp := p.SSD
		if sp.CapacityBytes == 0 {
			sp = disksim.MemorightSLC32().Resized("cache-ssd", p.CapacityBytes)
		}
		if sp.CapacityBytes < p.CapacityBytes {
			return nil, fmt.Errorf("cache: SSD capacity %d below cache capacity %d", sp.CapacityBytes, p.CapacityBytes)
		}
		c.ssd = disksim.NewSSD(engine, sp)
	}
	return c, nil
}

// Params reports the normalized configuration.
func (c *Cache) Params() Params { return c.params }

// Passthrough reports whether the cache is a strict pass-through.
func (c *Cache) Passthrough() bool { return c.passthrough }

// Backing returns the device behind the cache.
func (c *Cache) Backing() storage.Device { return c.backing }

// SSD returns the SSD tier device, nil for DRAM or pass-through.
func (c *Cache) SSD() *disksim.SSD { return c.ssd }

// Stats returns a copy of the cache accounting.
func (c *Cache) Stats() Stats { return c.stats }

// Capacity implements storage.Device: the cache is address-transparent,
// so it reports the backing capacity.
func (c *Cache) Capacity() int64 { return c.backing.Capacity() }

// PowerSource reports wall power: the backing source plus the tier's
// own draw.  A pass-through returns the backing source unchanged so
// metering is byte-identical with the uncached system.
func (c *Cache) PowerSource() powersim.Source {
	if c.passthrough {
		return c.backingSrc
	}
	return powersim.Sum{c.backingSrc, c.TierSource()}
}

// TierSource reports the cache tier's own power draw; nil for a
// pass-through.
func (c *Cache) TierSource() powersim.Source {
	switch {
	case c.ssd != nil:
		return c.ssd.Timeline()
	case c.dram != nil:
		return c.dram
	default:
		return nil
	}
}

// AttachTelemetry registers the cache instruments on s (nil s is a
// no-op, matching the repo-wide nil-guarded probe convention).
func (c *Cache) AttachTelemetry(s *telemetry.Set) {
	if s == nil || c.passthrough {
		return
	}
	c.tel = telemetry.NewCacheProbe(s, c.params.Tier)
	s.Registry().ProbeGauge("cache."+c.params.Tier+".dirty_ratio", func() float64 {
		if c.capacityLines == 0 {
			return 0
		}
		return float64(c.dirtyLines) / float64(c.capacityLines)
	})
	s.Registry().ProbeGauge("cache."+c.params.Tier+".occupancy", func() float64 {
		return float64(c.stats.Occupancy)
	})
}

// submitBacking forwards one request to the backing device, counting it
// for the backing-op conservation cross-check in the check layer.
func (c *Cache) submitBacking(req storage.Request, done func(simtime.Time)) {
	if req.Op == storage.Write {
		c.stats.BackingWrites++
	} else {
		c.stats.BackingReads++
	}
	c.backing.Submit(req, done)
}

// Submit implements storage.Device.
func (c *Cache) Submit(req storage.Request, done func(simtime.Time)) {
	if c.passthrough {
		c.submitBacking(req, done)
		return
	}
	now := c.engine.Now()
	req.Offset = foldOffset(req.Offset, req.Size, c.backing.Capacity())
	c.stats.Requests++
	c.idleGen++
	c.inflight++

	// Sequential-run detection feeds the bypass-seq admission policy.
	if req.Offset == c.lastEnd {
		c.runBytes += req.Size
	} else {
		c.runBytes = req.Size
	}
	c.lastEnd = req.End()

	fo := &frontOp{done: done, hit: true, start: now}
	if req.Op == storage.Read {
		c.submitRead(fo, req, now)
	} else {
		c.submitWrite(fo, req, now)
	}
	if fo.pending == 0 {
		// Cannot happen (size > 0 yields at least one fragment), but
		// guarantee the done-exactly-once contract regardless.
		panic("cache: request produced no work")
	}
	if c.tel != nil {
		c.tel.OnSubmit(fo.hit)
	}
}

// fragment is the intersection of a request with one extent.
type fragment struct {
	extent  int64
	lo, hi  int64 // byte range within the extent
	install bool
}

// fragments splits [off, off+size) into per-extent pieces.
func (c *Cache) fragments(off, size int64) []fragment {
	eb := c.params.ExtentBytes
	end := off + size
	frags := make([]fragment, 0, (size+eb-1)/eb+1)
	for e := off / eb; e*eb < end; e++ {
		lo, hi := e*eb, (e+1)*eb
		if off > lo {
			lo = off
		}
		if end < hi {
			hi = end
		}
		frags = append(frags, fragment{extent: e, lo: lo - e*eb, hi: hi - e*eb})
	}
	return frags
}

func (c *Cache) submitRead(fo *frontOp, req storage.Request, now simtime.Time) {
	frags := c.fragments(req.Offset, req.Size)
	// Hits are served from the tier; contiguous misses coalesce into
	// one backing read each and install on completion (hit-under-miss
	// never completes before the fill that would have provided data).
	var run []fragment
	flush := func() {
		if len(run) == 0 {
			return
		}
		c.issueFill(fo, run, now)
		run = nil
	}
	for i := range frags {
		f := &frags[i]
		if slot, ok := c.lookup(f.extent); ok {
			flush()
			c.stats.Hits++
			c.touch(slot)
			c.tierAccess(fo, false, slot, f.lo, f.hi)
			continue
		}
		fo.hit = false
		c.stats.Misses++
		f.install = c.admit(req, f.extent)
		if !f.install {
			c.stats.Bypassed++
		}
		run = append(run, *f)
	}
	flush()
}

// issueFill reads a contiguous run of missed extents from the backing
// device and installs the admitted ones when the read lands.
func (c *Cache) issueFill(fo *frontOp, run []fragment, now simtime.Time) {
	eb := c.params.ExtentBytes
	first, last := run[0], run[len(run)-1]
	req := storage.Request{
		Op:     storage.Read,
		Offset: first.extent*eb + first.lo,
		Size:   last.extent*eb + last.hi - (first.extent*eb + first.lo),
	}
	fo.pending++
	frags := append([]fragment(nil), run...)
	c.submitBacking(req, func(t simtime.Time) {
		for _, f := range frags {
			if !f.install {
				continue
			}
			if _, ok := c.lookup(f.extent); ok {
				continue // a concurrent miss already filled it
			}
			c.install(f.extent, t)
		}
		c.opDone(fo, t)
	})
}

func (c *Cache) submitWrite(fo *frontOp, req storage.Request, now simtime.Time) {
	frags := c.fragments(req.Offset, req.Size)
	// Write-back, write-allocate: admitted fragments dirty the line
	// without touching the backing device (the dirty union tracks
	// exactly what must be written back, so no fill read is needed);
	// bypassed fragments coalesce into direct backing writes.
	var run []fragment
	flush := func() {
		if len(run) == 0 {
			return
		}
		c.issueBypassWrite(fo, run)
		run = nil
	}
	for i := range frags {
		f := &frags[i]
		if slot, ok := c.lookup(f.extent); ok {
			flush()
			c.stats.Hits++
			c.touch(slot)
			c.markDirty(slot, f.lo, f.hi, now)
			c.tierAccess(fo, true, slot, f.lo, f.hi)
			continue
		}
		fo.hit = false
		c.stats.Misses++
		if c.admit(req, f.extent) {
			flush()
			slot := c.install(f.extent, now)
			c.markDirty(slot, f.lo, f.hi, now)
			c.tierAccess(fo, true, slot, f.lo, f.hi)
			continue
		}
		c.stats.Bypassed++
		run = append(run, *f)
	}
	flush()
}

// issueBypassWrite sends a contiguous run of non-admitted write
// fragments straight to the backing device.
func (c *Cache) issueBypassWrite(fo *frontOp, run []fragment) {
	eb := c.params.ExtentBytes
	first, last := run[0], run[len(run)-1]
	req := storage.Request{
		Op:     storage.Write,
		Offset: first.extent*eb + first.lo,
		Size:   last.extent*eb + last.hi - (first.extent*eb + first.lo),
	}
	fo.pending++
	c.submitBacking(req, func(t simtime.Time) { c.opDone(fo, t) })
}

// tierAccess models the cache device time for one fragment: DRAM is
// fixed latency plus transfer, SSD goes through the flash model.  The
// slot index is the tier-device address, so a line keeps a stable SSD
// location for its lifetime.
func (c *Cache) tierAccess(fo *frontOp, write bool, slot int, lo, hi int64) {
	fo.pending++
	n := hi - lo
	if c.ssd != nil {
		op := storage.Read
		if write {
			op = storage.Write
		}
		req := storage.Request{Op: op, Offset: int64(slot)*c.params.ExtentBytes + lo, Size: n}
		c.ssd.Submit(req, func(t simtime.Time) { c.opDone(fo, t) })
		return
	}
	d := c.params.DRAMAccess + simtime.Duration(float64(n)/(c.params.DRAMBandwidthMBps*1e6)*float64(simtime.Second))
	c.engine.AfterEvent(d, c, simtime.EventArg{Kind: kindTierDone, Ptr: fo})
}

// opDone retires one sub-operation; the last one completes the front
// request.  Events fire in time order, so the final callback carries
// the max finish time.
func (c *Cache) opDone(fo *frontOp, t simtime.Time) {
	fo.pending--
	if fo.pending > 0 {
		return
	}
	c.inflight--
	done := fo.done
	fo.done = nil
	if c.tel != nil {
		c.tel.OnComplete(fo.hit, fo.start, t)
	}
	done(t)
	if c.inflight == 0 {
		c.armIdle()
	}
}

// OnEvent implements simtime.Handler for DRAM completions and the
// writeback timers.
func (c *Cache) OnEvent(e *simtime.Engine, arg simtime.EventArg) {
	switch arg.Kind {
	case kindTierDone:
		c.opDone(arg.Ptr.(*frontOp), e.Now())
	case kindFlush:
		c.flushArmed = false
		if c.dirtyLines > 0 {
			c.stats.FlushCycles++
			c.flushAll(e.Now())
		}
		// Re-arms only if something is dirty again (flushAll cleans
		// everything, so this keeps the engine drainable).
		c.armFlush()
	case kindIdle:
		if arg.I64 != c.idleGen || c.inflight > 0 {
			return // a newer request arrived; this arming is stale
		}
		if c.dirtyLines > 0 {
			c.stats.IdleDrains++
			c.flushAll(e.Now())
		}
	}
}

// CheckInvariants verifies the cache bookkeeping; the internal/check
// harness calls it after the engine drains.
func (c *Cache) CheckInvariants(now simtime.Time) error {
	if c.passthrough {
		return nil
	}
	if got := c.stats.WritebackBytes + c.stats.DirtyBytes; got != c.stats.BytesDirtied {
		return fmt.Errorf("cache: write conservation violated: dirtied %d != written back %d + still dirty %d",
			c.stats.BytesDirtied, c.stats.WritebackBytes, c.stats.DirtyBytes)
	}
	var valid, dirty int
	var dirtyBytes int64
	for s := 0; s < c.numSets; s++ {
		setValid := 0
		for w := 0; w < c.ways; w++ {
			ln := &c.lines[s*c.ways+w]
			if !ln.valid {
				continue
			}
			valid++
			setValid++
			if want := int(ln.extent % int64(c.numSets)); want != s {
				return fmt.Errorf("cache: extent %d resident in set %d, want %d", ln.extent, s, want)
			}
			if ln.dirtyLo < 0 || ln.dirtyHi > c.params.ExtentBytes || ln.dirtyHi < ln.dirtyLo {
				return fmt.Errorf("cache: line for extent %d has bad dirty range [%d,%d)", ln.extent, ln.dirtyLo, ln.dirtyHi)
			}
			if ln.dirty() {
				dirty++
				dirtyBytes += ln.dirtyHi - ln.dirtyLo
			}
		}
		if setValid > c.ways {
			return fmt.Errorf("cache: set %d holds %d lines, associativity %d", s, setValid, c.ways)
		}
	}
	if valid > c.capacityLines {
		return fmt.Errorf("cache: %d resident lines exceed capacity %d", valid, c.capacityLines)
	}
	if valid != c.stats.Occupancy {
		return fmt.Errorf("cache: occupancy stat %d != %d resident lines", c.stats.Occupancy, valid)
	}
	if dirty != c.dirtyLines {
		return fmt.Errorf("cache: dirty-line count %d != %d dirty lines resident", c.dirtyLines, dirty)
	}
	if dirtyBytes != c.stats.DirtyBytes {
		return fmt.Errorf("cache: dirty-byte stat %d != %d dirty bytes resident", c.stats.DirtyBytes, dirtyBytes)
	}
	if c.outstandingWB < 0 || c.inflight < 0 {
		return fmt.Errorf("cache: negative inflight accounting (front %d, writeback %d)", c.inflight, c.outstandingWB)
	}
	// After a full drain every dirty extent must have reached the
	// backing device ("no dirty extent lost"): the idle-drain timer
	// fires once the front goes quiet, so a drained engine implies a
	// clean cache.
	if c.engine.Pending() == 0 {
		if c.outstandingWB != 0 {
			return fmt.Errorf("cache: engine drained with %d writebacks outstanding", c.outstandingWB)
		}
		if c.inflight != 0 {
			return fmt.Errorf("cache: engine drained with %d front requests inflight", c.inflight)
		}
		if c.params.IdleDrain > 0 && c.dirtyLines > 0 {
			return fmt.Errorf("cache: engine drained with %d dirty lines unwritten", c.dirtyLines)
		}
	}
	if c.ssd != nil {
		if err := c.ssd.CheckInvariants(now); err != nil {
			return fmt.Errorf("cache ssd tier: %w", err)
		}
	}
	return nil
}

// foldOffset maps an out-of-range request onto the backing device by
// wrapping the start address modulo the capacity (same convention as
// the disksim and raid models, so cached and pass-through systems
// address identical blocks).
func foldOffset(offset, size, capacity int64) int64 {
	if capacity <= 0 || size >= capacity {
		if capacity > 0 {
			return 0
		}
		return offset
	}
	if offset+size <= capacity {
		return offset
	}
	off := offset % capacity
	if off+size > capacity {
		off = capacity - size
	}
	return off
}

var _ storage.Device = (*Cache)(nil)
var _ simtime.Handler = (*Cache)(nil)
