package workload

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/blktrace"
	"repro/internal/simtime"
	"repro/internal/storage"
)

// SynthOptions perturb a synthesis run.  The zero value reproduces the
// profile as faithfully as the model allows.
type SynthOptions struct {
	// Seed drives the generator; the same profile and seed always
	// produce a byte-identical trace.
	Seed uint64
	// Bunches overrides the synthesized bunch count (0 = profile's).
	Bunches int
	// LoadScale multiplies the arrival rate: 2 halves every gap, 0.5
	// doubles it.  0 means 1 (unscaled).
	LoadScale float64
	// ReadRatio overrides the read/write mix when in [0,1]; negative
	// keeps the profile's mix.  The zero value would silently force an
	// all-write trace, so use -1 (or any negative) for "keep".
	ReadRatio float64
	// Device overrides the output trace's device label; empty derives
	// "derived-<profile name>".
	Device string
}

// normalize fills defaults and validates ranges.
func (o SynthOptions) normalize(p *Profile) (SynthOptions, error) {
	if o.Bunches == 0 {
		o.Bunches = p.Bunches
	}
	if o.Bunches < 0 {
		return o, fmt.Errorf("workload: negative bunch count %d", o.Bunches)
	}
	if o.LoadScale == 0 {
		o.LoadScale = 1
	}
	if o.LoadScale < 0 {
		return o, fmt.Errorf("workload: negative load scale %v", o.LoadScale)
	}
	if o.ReadRatio > 1 {
		return o, fmt.Errorf("workload: read ratio %v above 1", o.ReadRatio)
	}
	if o.Device == "" {
		o.Device = "derived-" + p.Name
	}
	return o, nil
}

// Synthesize samples the profile back into a paper-format trace.  The
// generator is seeded and deterministic: bunch sizes, request sizes and
// the read/write mix are quota-drawn so short syntheses still track the
// source proportions tightly; interarrival gaps walk the 2-state Markov
// chain and are rescaled so the horizon matches the profile duration
// (divided by LoadScale); offsets follow a sequential-run state machine
// whose run starts land in Zipf-ranked hot zones.
func Synthesize(p *Profile, opts SynthOptions) (*blktrace.Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opts, err := opts.normalize(p)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(opts.Seed, 0x10ad5caf))
	n := opts.Bunches
	tr := &blktrace.Trace{Device: opts.Device}
	if n == 0 {
		return tr, nil
	}

	// Concurrency, sizing and mix: quota-drawn sequences.
	bunchSizes := p.BunchSize.Draw(n, rng)
	total := 0
	for _, bs := range bunchSizes {
		total += int(bs)
	}
	sizes := p.RequestSize.Draw(total, rng)
	readRatio := p.ReadRatio
	if opts.ReadRatio >= 0 {
		readRatio = opts.ReadRatio
	}
	ops := drawOps(total, readRatio, rng)

	// Arrival times: Markov-modulated gaps, rescaled to the target
	// horizon so offered load is controlled by LoadScale alone.
	times := drawTimes(p, n, opts.LoadScale, rng)

	// Placement: sequential-run state machine over Zipf hot zones.
	pl := newPlacer(&p.Spatial, rng)

	tr.Bunches = make([]blktrace.Bunch, n)
	io := 0
	for i := 0; i < n; i++ {
		pkgs := make([]blktrace.IOPackage, bunchSizes[i])
		for j := range pkgs {
			size := sizes[io]
			pkgs[j] = blktrace.IOPackage{
				Sector: pl.place(size),
				Size:   size,
				Op:     ops[io],
			}
			io++
		}
		tr.Bunches[i] = blktrace.Bunch{Time: times[i], Packages: pkgs}
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("workload: synthesized trace invalid: %w", err)
	}
	return tr, nil
}

// drawOps quota-draws the read/write mix: exactly round(n*readRatio)
// reads, shuffled.
func drawOps(n int, readRatio float64, rng *rand.Rand) []storage.Op {
	ops := make([]storage.Op, n)
	reads := int(math.Round(float64(n) * readRatio))
	for i := 0; i < reads; i++ {
		ops[i] = storage.Read
	}
	for i := reads; i < n; i++ {
		ops[i] = storage.Write
	}
	for i := n - 1; i > 0; i-- {
		j := rng.IntN(i + 1)
		ops[i], ops[j] = ops[j], ops[i]
	}
	return ops
}

// drawTimes walks the gap model's Markov chain for n-1 gaps and
// rescales the sequence so its sum equals the profile's mean gap times
// (n-1) divided by loadScale — burst/idle structure from the chain,
// offered intensity pinned by construction.
func drawTimes(p *Profile, n int, loadScale float64, rng *rand.Rand) []simtime.Duration {
	times := make([]simtime.Duration, n)
	if n <= 1 {
		return times
	}
	m := &p.Gaps
	gaps := make([]float64, n-1)
	var sum float64
	burst := rng.Float64() < m.StartBurst
	for i := range gaps {
		// A state with no observed gaps cannot be sampled; fall through
		// to the other one (a constant-rate trace classifies every gap
		// burst, leaving idle empty).
		if burst && m.Burst.Empty() {
			burst = false
		}
		if !burst && m.Idle.Empty() {
			burst = true
		}
		var g float64
		var stay float64
		if burst {
			g = float64(m.Burst.Sample(rng))
			stay = m.BurstStay
		} else {
			g = float64(m.Idle.Sample(rng))
			stay = m.IdleStay
		}
		gaps[i] = g
		sum += g
		if rng.Float64() >= stay {
			burst = !burst
		}
	}
	target := m.MeanNs * float64(n-1) / loadScale
	scale := 1.0
	if sum > 0 && target > 0 {
		scale = target / sum
	}
	var acc float64
	for i, g := range gaps {
		acc += g * scale
		times[i+1] = simtime.Duration(math.Round(acc))
	}
	return times
}

// placer is the sequential-run state machine: each run starts at a
// uniform offset inside a Zipf-ranked hot zone and continues
// contiguously for a sampled run length.
type placer struct {
	s       *SpatialModel
	rng     *rand.Rand
	zipfCum []float64 // cumulative Zipf weights over ZoneRank
	next    int64     // next contiguous sector
	runLeft int
}

func newPlacer(s *SpatialModel, rng *rand.Rand) *placer {
	p := &placer{s: s, rng: rng}
	ranks := len(s.ZoneRank)
	if ranks == 0 {
		ranks = 1
	}
	p.zipfCum = make([]float64, ranks)
	var cum float64
	for i := 0; i < ranks; i++ {
		cum += 1 / math.Pow(float64(i+1), s.ZipfTheta)
		p.zipfCum[i] = cum
	}
	return p
}

// place returns the starting sector for a request of the given size.
func (p *placer) place(size int64) int64 {
	sectors := (size + storage.SectorSize - 1) / storage.SectorSize
	if p.runLeft > 0 && p.next+sectors <= p.s.EndSector {
		sector := p.next
		p.next = sector + sectors
		p.runLeft--
		return sector
	}
	// New run: Zipf-pick a zone rank, then a uniform start within it.
	zone := 0
	if n := len(p.s.ZoneRank); n > 0 {
		u := p.rng.Float64() * p.zipfCum[n-1]
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if p.zipfCum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		zone = p.s.ZoneRank[lo]
	}
	span := p.s.EndSector - p.s.BaseSector
	zones := int64(p.s.Zones)
	if zones <= 0 {
		zones = 1
	}
	zLo := p.s.BaseSector + int64(zone)*span/zones
	zHi := p.s.BaseSector + (int64(zone)+1)*span/zones
	maxStart := p.s.EndSector - sectors
	if zHi > maxStart {
		zHi = maxStart
	}
	if zLo > zHi {
		zLo = zHi
	}
	if zLo < 0 {
		zLo = 0
	}
	sector := zLo
	if zHi > zLo {
		sector += p.rng.Int64N(zHi - zLo + 1)
	}
	runLen := p.s.RunIOs.Sample(p.rng)
	if runLen < 1 {
		runLen = 1
	}
	p.runLeft = int(runLen) - 1
	p.next = sector + sectors
	return sector
}
