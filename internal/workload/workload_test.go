package workload

import (
	"bytes"
	"context"
	"math"
	"math/rand/v2"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/blktrace"
	"repro/internal/parsweep"
	"repro/internal/simtime"
	"repro/internal/storage"
	"repro/internal/synth"
)

// webTrace is a realistic bursty source for round-trip tests.
func webTrace() *blktrace.Trace {
	p := synth.DefaultWebServer()
	p.Duration = 20 * simtime.Second
	return synth.WebServerTrace(p)
}

// fixedTrace is a small deterministic trace with known structure: a
// hot front zone, 4 KB reads, sequential pairs every other bunch.
func fixedTrace() *blktrace.Trace {
	b := blktrace.NewBuilder("fixture")
	at := simtime.Duration(0)
	sector := int64(0)
	for i := 0; i < 60; i++ {
		at += 10 * simtime.Millisecond
		if i%2 == 0 {
			sector = int64(i%8) * 100000
		} else {
			sector += 8 // continue the previous 4 KB request
		}
		op := storage.Read
		if i%5 == 0 {
			op = storage.Write
		}
		if err := b.Record(at, blktrace.IOPackage{Sector: sector, Size: 4096, Op: op}); err != nil {
			panic(err)
		}
	}
	return b.Trace()
}

func TestAnalyzeCapturesStructure(t *testing.T) {
	tr := fixedTrace()
	p, err := Analyze(tr, "fix")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "fix" || p.Device != "fixture" {
		t.Fatalf("identity: %q %q", p.Name, p.Device)
	}
	if p.Bunches != 60 || p.IOs != 60 {
		t.Fatalf("counts: %d bunches %d IOs", p.Bunches, p.IOs)
	}
	st := blktrace.ComputeStats(tr)
	if math.Abs(p.ReadRatio-st.ReadRatio) > 1e-12 {
		t.Fatalf("read ratio %v, stats say %v", p.ReadRatio, st.ReadRatio)
	}
	if got := p.RequestSize.Mean(); got != 4096 {
		t.Fatalf("request size mean %v, want 4096", got)
	}
	// Half the IOs continue the previous one.
	if math.Abs(p.Spatial.SeqRatio-float64(st.IOs-st.Seeks)/float64(st.IOs)) > 1e-12 {
		t.Fatalf("seq ratio %v vs stats %+v", p.Spatial.SeqRatio, st)
	}
	if p.Spatial.RunIOs.Empty() || p.Spatial.SeekSectors.Empty() {
		t.Fatal("spatial distributions empty")
	}
	// Constant 10ms gaps: the gap model must reproduce the mean and
	// classify everything into one state.
	if p.Gaps.MeanNs != float64(10*simtime.Millisecond) {
		t.Fatalf("gap mean %v", p.Gaps.MeanNs)
	}
	if p.Gaps.Idle.Empty() == p.Gaps.Burst.Empty() {
		t.Fatalf("constant gaps must occupy exactly one state: %+v", p.Gaps)
	}
}

func TestAnalyzeRejectsEmptyTrace(t *testing.T) {
	if _, err := Analyze(&blktrace.Trace{Device: "x"}, ""); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	p, err := Analyze(webTrace(), "web")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.json")
	if err := WriteProfile(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("profile changed across JSON round trip:\n%+v\nvs\n%+v", p, got)
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte(`{"version":1}`))); err == nil {
		t.Fatal("profile without distributions accepted")
	}
	if _, err := Decode(bytes.NewReader([]byte(`not json`))); err == nil {
		t.Fatal("garbage accepted")
	}
}

// encode renders a trace to its canonical binary form for byte-level
// comparison.
func encode(t *testing.T, tr *blktrace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := blktrace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSynthesizeDeterministic(t *testing.T) {
	p, err := Analyze(webTrace(), "web")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Synthesize(p, SynthOptions{Seed: 7, ReadRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(p, SynthOptions{Seed: 7, ReadRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, a), encode(t, b)) {
		t.Fatal("same profile + same seed produced different traces")
	}
	c, err := Synthesize(p, SynthOptions{Seed: 8, ReadRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(encode(t, a), encode(t, c)) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestSynthesizeDeterministicAcrossWorkers regenerates the same seeded
// variants under a 1-worker and an 8-worker parsweep and requires
// byte-identical traces — synthesis must not depend on scheduling.
func TestSynthesizeDeterministicAcrossWorkers(t *testing.T) {
	p, err := Analyze(webTrace(), "web")
	if err != nil {
		t.Fatal(err)
	}
	gen := func(workers int) [][]byte {
		out, err := parsweep.Map(context.Background(), parsweep.Options{Workers: workers}, 8,
			func(i int) ([]byte, error) {
				tr, err := Synthesize(p, SynthOptions{Seed: uint64(i + 1), ReadRatio: -1})
				if err != nil {
					return nil, err
				}
				var buf bytes.Buffer
				if err := blktrace.Write(&buf, tr); err != nil {
					return nil, err
				}
				return buf.Bytes(), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq, par := gen(1), gen(8)
	for i := range seq {
		if !bytes.Equal(seq[i], par[i]) {
			t.Fatalf("variant %d differs between 1-worker and 8-worker sweeps", i)
		}
	}
}

func TestSynthesizeTracksSource(t *testing.T) {
	src := webTrace()
	p, err := Analyze(src, "web")
	if err != nil {
		t.Fatal(err)
	}
	syn, err := Synthesize(p, SynthOptions{Seed: 1, ReadRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	if syn.Device != "derived-web" {
		t.Fatalf("device label %q", syn.Device)
	}
	ss, ys := blktrace.ComputeStats(src), blktrace.ComputeStats(syn)
	relErr := func(a, b float64) float64 { return math.Abs(a-b) / math.Max(math.Abs(a), 1e-9) }
	if ys.Bunches != ss.Bunches {
		t.Fatalf("bunches %d vs %d", ys.Bunches, ss.Bunches)
	}
	// Quota sampling: IO count and mix track the source tightly.
	if relErr(float64(ss.IOs), float64(ys.IOs)) > 0.02 {
		t.Fatalf("IOs %d vs source %d", ys.IOs, ss.IOs)
	}
	if math.Abs(ss.ReadRatio-ys.ReadRatio) > 0.02 {
		t.Fatalf("read ratio %v vs %v", ys.ReadRatio, ss.ReadRatio)
	}
	if relErr(ss.AvgRequestBytes, ys.AvgRequestBytes) > 0.10 {
		t.Fatalf("mean request %v vs %v", ys.AvgRequestBytes, ss.AvgRequestBytes)
	}
	// The horizon is pinned by gap rescaling, so offered IOPS track.
	if relErr(ss.MeanIOPS, ys.MeanIOPS) > 0.05 {
		t.Fatalf("IOPS %v vs %v", ys.MeanIOPS, ss.MeanIOPS)
	}
	if math.Abs(ss.RandomRatio-ys.RandomRatio) > 0.15 {
		t.Fatalf("random ratio %v vs %v", ys.RandomRatio, ss.RandomRatio)
	}
}

func TestSynthesizePerturbations(t *testing.T) {
	p, err := Analyze(webTrace(), "web")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Synthesize(p, SynthOptions{Seed: 3, ReadRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	refStats := blktrace.ComputeStats(ref)

	// Doubling the load halves the horizon (same IO count).
	fast, err := Synthesize(p, SynthOptions{Seed: 3, LoadScale: 2, ReadRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	fs := blktrace.ComputeStats(fast)
	if ratio := fs.MeanIOPS / refStats.MeanIOPS; math.Abs(ratio-2) > 0.1 {
		t.Fatalf("load scale 2 changed IOPS by %vx", ratio)
	}

	// Overriding the mix lands exactly on the requested ratio.
	wr, err := Synthesize(p, SynthOptions{Seed: 3, ReadRatio: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if ws := blktrace.ComputeStats(wr); math.Abs(ws.ReadRatio-0.25) > 0.01 {
		t.Fatalf("read override: got ratio %v", ws.ReadRatio)
	}

	// Scaling the bunch count keeps per-bunch structure.
	short, err := Synthesize(p, SynthOptions{Seed: 3, Bunches: 100, ReadRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(short.Bunches); got != 100 {
		t.Fatalf("bunch override: got %d", got)
	}
}

func TestSynthesizeRejectsBadOptions(t *testing.T) {
	p, err := Analyze(fixedTrace(), "fix")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Synthesize(p, SynthOptions{Bunches: -1}); err == nil {
		t.Fatal("negative bunches accepted")
	}
	if _, err := Synthesize(p, SynthOptions{LoadScale: -2}); err == nil {
		t.Fatal("negative load scale accepted")
	}
	if _, err := Synthesize(p, SynthOptions{ReadRatio: 2}); err == nil {
		t.Fatal("read ratio > 1 accepted")
	}
	if _, err := Synthesize(&Profile{}, SynthOptions{}); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestDistributionQuotaDraw(t *testing.T) {
	d := NewDistribution([]int64{4096, 4096, 4096, 16384})
	rng := rand.New(rand.NewPCG(1, 2))
	got := d.Draw(400, rng)
	var small int
	for _, v := range got {
		if v == 4096 {
			small++
		}
	}
	// Largest-remainder quota: exactly 300 of 400 draws are 4096.
	if small != 300 {
		t.Fatalf("quota draw: %d/400 small values, want 300", small)
	}
}

func TestDistributionQuantileFallback(t *testing.T) {
	samples := make([]int64, 4000)
	rng := rand.New(rand.NewPCG(9, 9))
	for i := range samples {
		samples[i] = rng.Int64N(1 << 30)
	}
	d := NewDistribution(samples)
	if len(d.Quantiles) != quantilePoints || len(d.Values) != 0 {
		t.Fatalf("wide support must use quantiles: %d values %d quantiles", len(d.Values), len(d.Quantiles))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Sampled mean lands near the uniform mean.
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(rng))
	}
	if mean := sum / n; math.Abs(mean-float64(1<<29))/float64(1<<29) > 0.05 {
		t.Fatalf("quantile sampling mean %v", mean)
	}
}

func TestDistributionEmpty(t *testing.T) {
	var d Distribution
	if !d.Empty() || d.Mean() != 0 {
		t.Fatalf("zero distribution: %+v", d)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	if got := d.Draw(5, rng); got != nil {
		t.Fatalf("draw from empty = %v", got)
	}
}
