package workload

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/blktrace"
	"repro/internal/simtime"
	"repro/internal/storage"
)

func validPeriods() []Period {
	return []Period{
		{Name: "a", Start: 0, Duration: simtime.Minute, LoadScale: 1, ReadRatio: -1},
		{Name: "b", Start: simtime.Minute, Duration: simtime.Minute, LoadScale: 2, ReadRatio: -1},
	}
}

func TestMultiPeriodValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		spec MultiPeriodSpec
		want string
	}{
		{
			name: "no periods",
			spec: MultiPeriodSpec{Name: "empty"},
			want: "no periods",
		},
		{
			name: "zero duration",
			spec: MultiPeriodSpec{Periods: []Period{
				{Name: "z", Start: 0, Duration: 0, LoadScale: 1, ReadRatio: -1},
			}},
			want: "non-positive duration",
		},
		{
			name: "negative duration",
			spec: MultiPeriodSpec{Periods: []Period{
				{Name: "z", Start: 0, Duration: -simtime.Second, LoadScale: 1, ReadRatio: -1},
			}},
			want: "non-positive duration",
		},
		{
			name: "negative start",
			spec: MultiPeriodSpec{Periods: []Period{
				{Name: "z", Start: -simtime.Second, Duration: simtime.Second, LoadScale: 1, ReadRatio: -1},
			}},
			want: "negative start",
		},
		{
			name: "negative load scale",
			spec: MultiPeriodSpec{Periods: []Period{
				{Name: "z", Start: 0, Duration: simtime.Second, LoadScale: -0.5, ReadRatio: -1},
			}},
			want: "negative load scale",
		},
		{
			name: "read ratio above 1",
			spec: MultiPeriodSpec{Periods: []Period{
				{Name: "z", Start: 0, Duration: simtime.Second, LoadScale: 1, ReadRatio: 1.5},
			}},
			want: "read ratio",
		},
		{
			name: "overlapping windows",
			spec: MultiPeriodSpec{Periods: []Period{
				{Name: "a", Start: 0, Duration: 2 * simtime.Second, LoadScale: 1, ReadRatio: -1},
				{Name: "b", Start: simtime.Second, Duration: simtime.Second, LoadScale: 1, ReadRatio: -1},
			}},
			want: "overlaps",
		},
		{
			name: "bad version",
			spec: MultiPeriodSpec{Version: 99, Periods: validPeriods()},
			want: "version",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
			// SynthesizeMulti must surface the same rejection.
			p, aerr := Analyze(fixedTrace(), "fix")
			if aerr != nil {
				t.Fatal(aerr)
			}
			if _, serr := SynthesizeMulti(p, tc.spec, SynthOptions{ReadRatio: -1}); serr == nil {
				t.Fatal("SynthesizeMulti accepted an invalid spec")
			}
		})
	}
}

func TestMultiPeriodPresets(t *testing.T) {
	for _, name := range []string{"diurnal", "flash-crowd", "multi-tenant"} {
		spec, err := PresetSpec(name, 10*simtime.Minute)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("%s preset invalid: %v", name, err)
		}
		if spec.Duration() != 10*simtime.Minute && name != "flash-crowd" {
			t.Fatalf("%s duration = %v, want 10m", name, spec.Duration())
		}
	}
	if _, err := PresetSpec("tide", simtime.Minute); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if _, err := PresetSpec("diurnal", 0); err == nil {
		t.Fatal("zero preset duration accepted")
	}
}

func TestSynthesizeMultiShape(t *testing.T) {
	p, err := Analyze(webTrace(), "web")
	if err != nil {
		t.Fatal(err)
	}
	spec := MultiPeriodSpec{
		Version: MultiPeriodVersion,
		Name:    "two-phase",
		Periods: []Period{
			{Name: "calm", Start: 0, Duration: 10 * simtime.Second, LoadScale: 0.5, ReadRatio: -1},
			{Name: "busy", Start: 10 * simtime.Second, Duration: 10 * simtime.Second, LoadScale: 3, ReadRatio: 0.1},
		},
	}
	tr, err := SynthesizeMulti(p, spec, SynthOptions{Seed: 7, ReadRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// The busy window must be denser than the calm one.
	var calm, busy int
	var busyReads, busyIOs int
	for _, b := range tr.Bunches {
		if b.Time < 10*simtime.Second {
			calm++
		} else {
			busy++
			for _, pkg := range b.Packages {
				busyIOs++
				if pkg.Op == storage.Read {
					busyReads++
				}
			}
		}
	}
	if calm == 0 || busy == 0 {
		t.Fatalf("windows empty: calm %d busy %d", calm, busy)
	}
	if busy < 3*calm {
		t.Fatalf("busy window (%d bunches) not ~6x denser than calm (%d)", busy, calm)
	}
	// The busy window's mix follows its ReadRatio override.
	if ratio := float64(busyReads) / float64(busyIOs); ratio > 0.3 {
		t.Fatalf("busy read ratio %v, want ~0.1", ratio)
	}
	if tr.Duration() > spec.Duration() {
		t.Fatalf("trace duration %v beyond spec %v", tr.Duration(), spec.Duration())
	}
}

func TestSynthesizeMultiDeterministic(t *testing.T) {
	p, err := Analyze(fixedTrace(), "fix")
	if err != nil {
		t.Fatal(err)
	}
	spec := DiurnalSpec(4 * simtime.Minute)
	a, err := SynthesizeMulti(p, spec, SynthOptions{Seed: 3, ReadRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SynthesizeMulti(p, spec, SynthOptions{Seed: 3, ReadRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	var ab, bb bytes.Buffer
	if err := blktrace.WriteText(&ab, a); err != nil {
		t.Fatal(err)
	}
	if err := blktrace.WriteText(&bb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Fatal("same seed produced different multi-period traces")
	}
}
