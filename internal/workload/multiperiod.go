package workload

import (
	"fmt"

	"repro/internal/blktrace"
	"repro/internal/simtime"
)

// Nonstationary multi-period synthesis: a trace built from piecewise
// windows, each replaying the source profile at its own load scale and
// read mix.  Cache warm-up and decay only show up under load that
// changes shape over time — a diurnal swing fills the cache off-peak
// and hits on it at peak; a flash crowd measures cold-miss storms; a
// multi-tenant mix interleaves phases with different footprints.

// MultiPeriodVersion tags the JSON encoding of MultiPeriodSpec.
const MultiPeriodVersion = 1

// Period is one synthesis window.
type Period struct {
	// Name labels the window ("night", "burst", ...).
	Name string `json:"name"`
	// Start is the window's offset from trace start.
	Start simtime.Duration `json:"start_ns"`
	// Duration is the window length; must be positive.
	Duration simtime.Duration `json:"duration_ns"`
	// LoadScale multiplies the profile's arrival rate inside the
	// window (1 = unscaled); must be non-negative, 0 yields silence.
	LoadScale float64 `json:"load_scale"`
	// ReadRatio overrides the read/write mix in [0,1]; negative keeps
	// the profile's mix.
	ReadRatio float64 `json:"read_ratio"`
}

// End reports the window's end offset.
func (p Period) End() simtime.Duration { return p.Start + p.Duration }

// MultiPeriodSpec is a validated sequence of non-overlapping windows.
type MultiPeriodSpec struct {
	Version int      `json:"version"`
	Name    string   `json:"name"`
	Periods []Period `json:"periods"`
}

// Duration reports the end of the last window.
func (s MultiPeriodSpec) Duration() simtime.Duration {
	var d simtime.Duration
	for _, p := range s.Periods {
		if p.End() > d {
			d = p.End()
		}
	}
	return d
}

// PeriodAt reports the window covering offset t from trace start.
// Gaps between windows (and anything past the last window) belong to
// no period.
func (s MultiPeriodSpec) PeriodAt(t simtime.Duration) (Period, bool) {
	for _, p := range s.Periods {
		if t >= p.Start && t < p.End() {
			return p, true
		}
	}
	return Period{}, false
}

// Validate rejects malformed specs with labelled errors: no periods,
// zero or negative durations, negative starts or load scales, read
// ratios above 1, and overlapping or out-of-order windows.
func (s MultiPeriodSpec) Validate() error {
	if s.Version != 0 && s.Version != MultiPeriodVersion {
		return fmt.Errorf("workload: multi-period spec version %d unsupported (want %d)", s.Version, MultiPeriodVersion)
	}
	if len(s.Periods) == 0 {
		return fmt.Errorf("workload: multi-period spec %q has no periods", s.Name)
	}
	for i, p := range s.Periods {
		label := p.Name
		if label == "" {
			label = fmt.Sprintf("#%d", i)
		}
		if p.Duration <= 0 {
			return fmt.Errorf("workload: period %s has non-positive duration %v", label, p.Duration)
		}
		if p.Start < 0 {
			return fmt.Errorf("workload: period %s has negative start %v", label, p.Start)
		}
		if p.LoadScale < 0 {
			return fmt.Errorf("workload: period %s has negative load scale %v", label, p.LoadScale)
		}
		if p.ReadRatio > 1 {
			return fmt.Errorf("workload: period %s has read ratio %v above 1", label, p.ReadRatio)
		}
		if i > 0 {
			prev := s.Periods[i-1]
			if p.Start < prev.End() {
				return fmt.Errorf("workload: period %s (start %v) overlaps %s (ends %v)",
					label, p.Start, prev.Name, prev.End())
			}
		}
	}
	return nil
}

// SynthesizeMulti samples the profile once per window and concatenates
// the segments at their window offsets.  Each window draws from its
// own seeded generator stream, so inserting or editing one window
// never reshuffles the others; bunch counts derive from the window
// duration, the profile's mean gap and the window's load scale.
func SynthesizeMulti(p *Profile, spec MultiPeriodSpec, opts SynthOptions) (*blktrace.Trace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Gaps.MeanNs <= 0 {
		return nil, fmt.Errorf("workload: profile %q has no interarrival model", p.Name)
	}
	device := opts.Device
	if device == "" {
		device = "derived-" + p.Name
		if spec.Name != "" {
			device += "-" + spec.Name
		}
	}
	out := &blktrace.Trace{Device: device}
	for i, win := range spec.Periods {
		if win.LoadScale == 0 {
			continue // a silent window contributes nothing
		}
		// Size the segment so its natural (rescaled) span fills the
		// window: n-1 gaps of MeanNs/LoadScale each.
		n := 1 + int(float64(win.Duration)*win.LoadScale/p.Gaps.MeanNs)
		wopts := opts
		wopts.Device = device
		wopts.Bunches = n
		wopts.LoadScale = win.LoadScale
		if win.ReadRatio >= 0 {
			wopts.ReadRatio = win.ReadRatio
		} else {
			wopts.ReadRatio = opts.ReadRatio
		}
		// A distinct seed stream per window keeps windows independent.
		wopts.Seed = opts.Seed + uint64(i)*104729 + 1
		seg, err := Synthesize(p, wopts)
		if err != nil {
			return nil, fmt.Errorf("workload: period %d (%s): %w", i, win.Name, err)
		}
		for _, b := range seg.Bunches {
			at := b.Time + win.Start
			if at >= win.End() {
				break // clip the segment tail to its window
			}
			out.Bunches = append(out.Bunches, blktrace.Bunch{Time: at, Packages: b.Packages})
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("workload: multi-period trace invalid: %w", err)
	}
	return out, nil
}

// DiurnalSpec models a day/night load swing scaled into total: four
// equal windows at low, rising, peak and falling load.
func DiurnalSpec(total simtime.Duration) MultiPeriodSpec {
	q := total / 4
	return MultiPeriodSpec{
		Version: MultiPeriodVersion,
		Name:    "diurnal",
		Periods: []Period{
			{Name: "night", Start: 0, Duration: q, LoadScale: 0.2, ReadRatio: -1},
			{Name: "morning", Start: q, Duration: q, LoadScale: 0.8, ReadRatio: -1},
			{Name: "peak", Start: 2 * q, Duration: q, LoadScale: 2.0, ReadRatio: -1},
			{Name: "evening", Start: 3 * q, Duration: q, LoadScale: 0.6, ReadRatio: -1},
		},
	}
}

// FlashCrowdSpec models a quiet baseline interrupted by a short burst
// at many times the base rate — the cold-miss storm scenario.
func FlashCrowdSpec(total simtime.Duration) MultiPeriodSpec {
	burst := total / 10
	pre := total * 4 / 10
	return MultiPeriodSpec{
		Version: MultiPeriodVersion,
		Name:    "flash-crowd",
		Periods: []Period{
			{Name: "calm", Start: 0, Duration: pre, LoadScale: 0.3, ReadRatio: -1},
			{Name: "crowd", Start: pre, Duration: burst, LoadScale: 5.0, ReadRatio: -1},
			{Name: "decay", Start: pre + burst, Duration: total - pre - burst, LoadScale: 0.5, ReadRatio: -1},
		},
	}
}

// MultiTenantSpec interleaves a read-heavy tenant with a write-heavy
// one — alternating phases exercise dirty-data build-up and drain.
func MultiTenantSpec(total simtime.Duration) MultiPeriodSpec {
	q := total / 4
	return MultiPeriodSpec{
		Version: MultiPeriodVersion,
		Name:    "multi-tenant",
		Periods: []Period{
			{Name: "tenant-a", Start: 0, Duration: q, LoadScale: 1.0, ReadRatio: 0.95},
			{Name: "tenant-b", Start: q, Duration: q, LoadScale: 1.5, ReadRatio: 0.2},
			{Name: "tenant-a2", Start: 2 * q, Duration: q, LoadScale: 1.0, ReadRatio: 0.95},
			{Name: "tenant-b2", Start: 3 * q, Duration: q, LoadScale: 1.5, ReadRatio: 0.2},
		},
	}
}

// PresetSpec returns the named nonstationary preset scaled to total.
func PresetSpec(name string, total simtime.Duration) (MultiPeriodSpec, error) {
	if total <= 0 {
		return MultiPeriodSpec{}, fmt.Errorf("workload: non-positive preset duration %v", total)
	}
	switch name {
	case "diurnal":
		return DiurnalSpec(total), nil
	case "flash-crowd":
		return FlashCrowdSpec(total), nil
	case "multi-tenant":
		return MultiTenantSpec(total), nil
	default:
		return MultiPeriodSpec{}, fmt.Errorf("workload: unknown multi-period preset %q (want diurnal, flash-crowd or multi-tenant)", name)
	}
}
