package workload

import (
	"fmt"
	"math/rand/v2"
	"slices"
	"sort"
)

const (
	// maxSupport bounds the exact-histogram representation; sample sets
	// with more distinct values fall back to a quantile table.
	maxSupport = 512
	// quantilePoints is the resolution of the quantile-table fallback.
	quantilePoints = 65
)

// Distribution is a serializable empirical distribution over int64
// values with two representations:
//
//   - an exact value histogram (Values/Counts) when the support is
//     small — the common case for request sizes, bunch sizes and run
//     lengths, where preserving the exact value set matters;
//   - an evenly spaced quantile table otherwise — interarrival gaps and
//     seek distances, where the support is essentially continuous and
//     inverse-CDF interpolation is the right sampler.
//
// Exactly one representation is populated.
type Distribution struct {
	// Values are the sorted distinct sample values; Counts are their
	// multiplicities (same length).
	Values []int64 `json:"values,omitempty"`
	Counts []int64 `json:"counts,omitempty"`
	// Quantiles holds the sample value at quantile i/(len-1).
	Quantiles []int64 `json:"quantiles,omitempty"`
}

// NewDistribution fits a distribution to the sample set.  An empty
// sample set yields the empty distribution.
func NewDistribution(samples []int64) Distribution {
	if len(samples) == 0 {
		return Distribution{}
	}
	sorted := slices.Clone(samples)
	slices.Sort(sorted)
	distinct := 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1] {
			distinct++
		}
	}
	if distinct <= maxSupport {
		d := Distribution{Values: make([]int64, 0, distinct), Counts: make([]int64, 0, distinct)}
		for _, v := range sorted {
			if n := len(d.Values); n > 0 && d.Values[n-1] == v {
				d.Counts[n-1]++
			} else {
				d.Values = append(d.Values, v)
				d.Counts = append(d.Counts, 1)
			}
		}
		return d
	}
	q := make([]int64, quantilePoints)
	for i := range q {
		// Nearest-rank index at quantile i/(quantilePoints-1).
		idx := i * (len(sorted) - 1) / (quantilePoints - 1)
		q[i] = sorted[idx]
	}
	return Distribution{Quantiles: q}
}

// Empty reports whether the distribution holds no samples.
func (d Distribution) Empty() bool {
	return len(d.Values) == 0 && len(d.Quantiles) == 0
}

// Validate checks structural consistency.
func (d Distribution) Validate() error {
	if len(d.Values) != len(d.Counts) {
		return fmt.Errorf("workload: %d values but %d counts", len(d.Values), len(d.Counts))
	}
	if len(d.Values) > 0 && len(d.Quantiles) > 0 {
		return fmt.Errorf("workload: distribution has both histogram and quantile forms")
	}
	for i, c := range d.Counts {
		if c <= 0 {
			return fmt.Errorf("workload: non-positive count %d for value %d", c, d.Values[i])
		}
		if i > 0 && d.Values[i] <= d.Values[i-1] {
			return fmt.Errorf("workload: histogram values not strictly increasing at %d", i)
		}
	}
	for i := 1; i < len(d.Quantiles); i++ {
		if d.Quantiles[i] < d.Quantiles[i-1] {
			return fmt.Errorf("workload: quantile table not monotone at %d", i)
		}
	}
	return nil
}

// total sums histogram counts.
func (d Distribution) total() int64 {
	var t int64
	for _, c := range d.Counts {
		t += c
	}
	return t
}

// Mean reports the distribution mean (0 when empty).
func (d Distribution) Mean() float64 {
	if len(d.Values) > 0 {
		var sum float64
		var n int64
		for i, v := range d.Values {
			sum += float64(v) * float64(d.Counts[i])
			n += d.Counts[i]
		}
		return sum / float64(n)
	}
	if len(d.Quantiles) == 0 {
		return 0
	}
	var sum float64
	for _, v := range d.Quantiles {
		sum += float64(v)
	}
	return sum / float64(len(d.Quantiles))
}

// Sample draws one value by inverse-CDF sampling.
func (d Distribution) Sample(rng *rand.Rand) int64 {
	if len(d.Values) > 0 {
		r := rng.Int64N(d.total())
		for i, c := range d.Counts {
			if r < c {
				return d.Values[i]
			}
			r -= c
		}
		return d.Values[len(d.Values)-1] // unreachable
	}
	if len(d.Quantiles) == 0 {
		return 0
	}
	if len(d.Quantiles) == 1 {
		return d.Quantiles[0]
	}
	pos := rng.Float64() * float64(len(d.Quantiles)-1)
	i := int(pos)
	if i >= len(d.Quantiles)-1 {
		i = len(d.Quantiles) - 2
	}
	frac := pos - float64(i)
	lo, hi := d.Quantiles[i], d.Quantiles[i+1]
	return lo + int64(frac*float64(hi-lo))
}

// Draw produces n samples.  For histogram distributions it uses
// largest-remainder quota allocation followed by a seeded shuffle, so
// the drawn multiset tracks the source proportions to within one count
// per distinct value — the property that keeps synthetic totals (IO
// counts, bytes) tightly faithful even for short traces.  Quantile
// distributions sample i.i.d.
func (d Distribution) Draw(n int, rng *rand.Rand) []int64 {
	if n <= 0 || d.Empty() {
		return nil
	}
	out := make([]int64, 0, n)
	if len(d.Values) > 0 {
		total := float64(d.total())
		type slot struct {
			idx  int
			frac float64
		}
		rem := n
		slots := make([]slot, len(d.Values))
		for i, c := range d.Counts {
			exact := float64(n) * float64(c) / total
			base := int(exact)
			slots[i] = slot{idx: i, frac: exact - float64(base)}
			for j := 0; j < base; j++ {
				out = append(out, d.Values[i])
			}
			rem -= base
		}
		sort.Slice(slots, func(a, b int) bool {
			if slots[a].frac != slots[b].frac {
				return slots[a].frac > slots[b].frac
			}
			return slots[a].idx < slots[b].idx
		})
		for i := 0; i < rem; i++ {
			out = append(out, d.Values[slots[i%len(slots)].idx])
		}
		for i := len(out) - 1; i > 0; i-- {
			j := rng.IntN(i + 1)
			out[i], out[j] = out[j], out[i]
		}
		return out
	}
	for i := 0; i < n; i++ {
		out = append(out, d.Sample(rng))
	}
	return out
}
