// Package workload characterizes block traces into compact statistical
// profiles and synthesizes new traces from them — the
// characterization→synthesis direction of TraceTracker-style workload
// reconstruction, layered on TRACER's trace repository.
//
// A Profile captures four aspects of a blktrace.Trace:
//
//   - interarrival structure: a 2-state Markov-modulated burst/idle
//     process, each state carrying an empirical gap CDF;
//   - concurrency and sizing: bunch-size and request-size empirical
//     distributions plus the read/write mix;
//   - spatial locality: seek-distance and sequential-run-length
//     distributions (accounted by blktrace.SeekCounter, shared with
//     ComputeStats) and a Zipf fit of the per-zone access skew;
//   - identity: source device, counts and duration, so derived traces
//     can be named and fidelity-checked against their origin.
//
// Profiles serialize to JSON (`tracer analyze` emits them, `tracegen
// -from-profile` consumes them), and Synthesize turns one back into a
// paper-format bunch/IO_package trace deterministically from a seed,
// optionally perturbing load and read/write mix.
package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/blktrace"
	"repro/internal/storage"
)

// ProfileVersion is the JSON schema version.
const ProfileVersion = 1

// zoneCount is the spatial resolution of the hot-zone fit: the footprint
// is divided into up to this many equal zones.
const zoneCount = 64

// GapModel is the interarrival model: a 2-state Markov-modulated
// process whose states ("burst": gaps at or below the threshold,
// "idle": above) each carry an empirical gap CDF.  Synthesis walks the
// chain and inverse-CDF-samples the state's distribution.
type GapModel struct {
	// MeanNs is the mean interarrival gap of the source trace.
	MeanNs float64 `json:"mean_ns"`
	// ThresholdNs splits gaps into burst (<=) and idle (>).
	ThresholdNs int64 `json:"threshold_ns"`
	// StartBurst is the fraction of gaps classified burst (used as the
	// chain's initial-state probability).
	StartBurst float64 `json:"start_burst"`
	// BurstStay and IdleStay are the self-transition probabilities.
	BurstStay float64 `json:"burst_stay"`
	IdleStay  float64 `json:"idle_stay"`
	// Burst and Idle are the per-state empirical gap distributions.
	Burst Distribution `json:"burst"`
	Idle  Distribution `json:"idle"`
}

// SpatialModel captures where requests land.
type SpatialModel struct {
	// BaseSector and EndSector bound the touched footprint
	// [BaseSector, EndSector).
	BaseSector int64 `json:"base_sector"`
	EndSector  int64 `json:"end_sector"`
	// SeqRatio is the fraction of IOs continuing the previous request.
	SeqRatio float64 `json:"seq_ratio"`
	// RunIOs is the distribution of maximal sequential-run lengths.
	RunIOs Distribution `json:"run_ios"`
	// SeekSectors is the distribution of absolute seek distances.
	SeekSectors Distribution `json:"seek_sectors"`
	// ZipfTheta is the skew exponent fitted to per-zone access counts;
	// 0 means uniform.
	ZipfTheta float64 `json:"zipf_theta"`
	// Zones is the number of equal zones the footprint was divided
	// into; ZoneRank lists the zone indices hottest-first (zones never
	// touched are omitted).
	Zones    int   `json:"zones"`
	ZoneRank []int `json:"zone_rank"`
}

// Profile is the serializable workload characterization.
type Profile struct {
	Version int `json:"version"`
	// Name labels the profile (derived trace names embed it).
	Name string `json:"name"`
	// Device is the source trace's device label.
	Device string `json:"device"`
	// Bunches, IOs and DurationNs pin the source trace's shape.
	Bunches    int   `json:"bunches"`
	IOs        int   `json:"ios"`
	DurationNs int64 `json:"duration_ns"`

	// ReadRatio is the fraction of IOs that are reads.
	ReadRatio float64 `json:"read_ratio"`
	// BunchSize and RequestSize are the concurrency and sizing models.
	BunchSize   Distribution `json:"bunch_size"`
	RequestSize Distribution `json:"request_size"`
	// Gaps and Spatial are the arrival and placement models.
	Gaps    GapModel     `json:"gaps"`
	Spatial SpatialModel `json:"spatial"`
}

// Validate checks the profile is complete enough to synthesize from.
func (p *Profile) Validate() error {
	if p.Version != ProfileVersion {
		return fmt.Errorf("workload: unsupported profile version %d", p.Version)
	}
	if p.Bunches <= 0 || p.IOs <= 0 {
		return fmt.Errorf("workload: profile has no bunches/IOs (%d/%d)", p.Bunches, p.IOs)
	}
	if p.ReadRatio < 0 || p.ReadRatio > 1 {
		return fmt.Errorf("workload: read ratio %v out of [0,1]", p.ReadRatio)
	}
	if p.BunchSize.Empty() || p.RequestSize.Empty() {
		return fmt.Errorf("workload: empty bunch-size or request-size distribution")
	}
	if p.Spatial.EndSector <= p.Spatial.BaseSector {
		return fmt.Errorf("workload: empty footprint [%d,%d)", p.Spatial.BaseSector, p.Spatial.EndSector)
	}
	for _, d := range []Distribution{p.BunchSize, p.RequestSize, p.Gaps.Burst, p.Gaps.Idle, p.Spatial.RunIOs, p.Spatial.SeekSectors} {
		if err := d.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Analyze streams a trace into a profile.  The name labels the profile;
// empty defaults to the trace's device label.
func Analyze(t *blktrace.Trace, name string) (*Profile, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	if len(t.Bunches) == 0 {
		return nil, fmt.Errorf("workload: cannot profile an empty trace")
	}
	if name == "" {
		name = t.Device
	}
	p := &Profile{
		Version:    ProfileVersion,
		Name:       name,
		Device:     t.Device,
		Bunches:    len(t.Bunches),
		DurationNs: int64(t.Duration()),
	}

	// One pass for sizes, mix, footprint and the shared seek/run
	// accounting; gaps come from the bunch timestamps.
	var runLens, seekDists, bunchSizes, reqSizes []int64
	sc := blktrace.SeekCounter{
		OnSeek:   func(d int64) { seekDists = append(seekDists, d) },
		OnRunEnd: func(n int) { runLens = append(runLens, int64(n)) },
	}
	var reads int
	base, end := int64(math.MaxInt64), int64(0)
	for i := range t.Bunches {
		b := &t.Bunches[i]
		bunchSizes = append(bunchSizes, int64(len(b.Packages)))
		for _, pkg := range b.Packages {
			p.IOs++
			reqSizes = append(reqSizes, pkg.Size)
			if pkg.Op == storage.Read {
				reads++
			}
			if pkg.Sector < base {
				base = pkg.Sector
			}
			if e := pkg.Sector + (pkg.Size+storage.SectorSize-1)/storage.SectorSize; e > end {
				end = e
			}
			sc.Observe(pkg)
		}
	}
	sc.Finish()
	p.ReadRatio = float64(reads) / float64(p.IOs)
	p.BunchSize = NewDistribution(bunchSizes)
	p.RequestSize = NewDistribution(reqSizes)

	gaps := make([]int64, 0, len(t.Bunches)-1)
	for i := 1; i < len(t.Bunches); i++ {
		gaps = append(gaps, int64(t.Bunches[i].Time-t.Bunches[i-1].Time))
	}
	p.Gaps = fitGapModel(gaps)

	p.Spatial = SpatialModel{
		BaseSector:  base,
		EndSector:   end,
		SeqRatio:    float64(sc.SeqIOs) / float64(sc.IOs),
		RunIOs:      NewDistribution(runLens),
		SeekSectors: NewDistribution(seekDists),
	}
	fitZones(t, &p.Spatial)
	return p, nil
}

// fitGapModel classifies gaps into burst/idle around the mean gap and
// fits the 2-state chain: per-state empirical CDFs plus self-transition
// probabilities estimated from adjacent gap pairs.
func fitGapModel(gaps []int64) GapModel {
	var m GapModel
	if len(gaps) == 0 {
		return m
	}
	var sum float64
	for _, g := range gaps {
		sum += float64(g)
	}
	m.MeanNs = sum / float64(len(gaps))
	m.ThresholdNs = int64(m.MeanNs)

	var burst, idle []int64
	isBurst := make([]bool, len(gaps))
	for i, g := range gaps {
		if g <= m.ThresholdNs {
			isBurst[i] = true
			burst = append(burst, g)
		} else {
			idle = append(idle, g)
		}
	}
	m.StartBurst = float64(len(burst)) / float64(len(gaps))
	m.Burst = NewDistribution(burst)
	m.Idle = NewDistribution(idle)

	var bb, bAll, ii, iAll int
	for i := 1; i < len(isBurst); i++ {
		if isBurst[i-1] {
			bAll++
			if isBurst[i] {
				bb++
			}
		} else {
			iAll++
			if !isBurst[i] {
				ii++
			}
		}
	}
	m.BurstStay = stayProb(bb, bAll)
	m.IdleStay = stayProb(ii, iAll)
	return m
}

func stayProb(stay, total int) float64 {
	if total == 0 {
		return 1
	}
	return float64(stay) / float64(total)
}

// fitZones counts per-zone accesses across the footprint, ranks the
// zones hottest-first, and fits a Zipf exponent to the ranked counts by
// log-log regression.
func fitZones(t *blktrace.Trace, s *SpatialModel) {
	span := s.EndSector - s.BaseSector
	zones := int64(zoneCount)
	if span < zones {
		zones = span
	}
	if zones <= 0 {
		zones = 1
	}
	s.Zones = int(zones)
	counts := make([]int64, zones)
	for i := range t.Bunches {
		for _, pkg := range t.Bunches[i].Packages {
			z := (pkg.Sector - s.BaseSector) * zones / span
			if z >= zones {
				z = zones - 1
			}
			counts[z]++
		}
	}
	type zc struct {
		zone  int
		count int64
	}
	ranked := make([]zc, 0, zones)
	for z, c := range counts {
		if c > 0 {
			ranked = append(ranked, zc{zone: z, count: c})
		}
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].count != ranked[b].count {
			return ranked[a].count > ranked[b].count
		}
		return ranked[a].zone < ranked[b].zone
	})
	s.ZoneRank = make([]int, len(ranked))
	for i, r := range ranked {
		s.ZoneRank[i] = r.zone
	}
	// theta is the negated slope of ln(count) over ln(rank).
	if len(ranked) >= 2 {
		var sx, sy, sxx, sxy float64
		for i, r := range ranked {
			x := math.Log(float64(i + 1))
			y := math.Log(float64(r.count))
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
		}
		n := float64(len(ranked))
		if denom := n*sxx - sx*sx; denom > 0 {
			theta := -(n*sxy - sx*sy) / denom
			s.ZipfTheta = math.Max(0, math.Min(4, theta))
		}
	}
}

// Encode writes the profile as indented JSON.
func (p *Profile) Encode(w io.Writer) error {
	blob, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(blob, '\n'))
	return err
}

// Decode reads a JSON profile and validates it.
func Decode(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("workload: decode profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// WriteProfile saves a profile to a JSON file.
func WriteProfile(path string, p *Profile) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadProfile loads and validates a JSON profile file.
func ReadProfile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
