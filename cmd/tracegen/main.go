// Command tracegen is the standalone IOmeter-style workload generator:
// it drives a simulated array at peak intensity under a configured
// workload mode and writes the collected blktrace-format trace — the
// tool the paper uses to populate its 125-trace repository, usable
// without the rest of the framework.
//
// Usage:
//
//	tracegen -out trace.replay [-device hdd|ssd] [-size 4096]
//	         [-read 0.5] [-random 0.5] [-duration 2s] [-qd 8]
//	         [-text] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/blktrace"
	"repro/internal/experiments"
	"repro/internal/simtime"
	"repro/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	outPath := fs.String("out", "", "output trace file (required)")
	device := fs.String("device", "hdd", "array kind: hdd or ssd")
	size := fs.Int64("size", 4096, "request size in bytes")
	read := fs.Float64("read", 0.5, "read ratio [0,1]")
	random := fs.Float64("random", 0.5, "random ratio [0,1]")
	duration := fs.Duration("duration", 2_000_000_000, "collection duration (virtual time)")
	qd := fs.Int("qd", 8, "outstanding IOs (queue depth)")
	text := fs.Bool("text", false, "write the text format instead of binary")
	seed := fs.Uint64("seed", 1, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPath == "" {
		return fmt.Errorf("-out is required")
	}
	kind, err := experiments.KindFromString(*device)
	if err != nil {
		return err
	}
	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	engine, array, err := experiments.NewSystem(cfg, kind)
	if err != nil {
		return err
	}
	tr, err := synth.Collect(engine, array, synth.CollectParams{
		Mode:            synth.Mode{RequestBytes: *size, ReadRatio: *read, RandomRatio: *random},
		Duration:        simtime.FromStd(*duration),
		QueueDepth:      *qd,
		WorkingSetBytes: cfg.WorkingSet,
		Seed:            *seed,
	})
	if err != nil {
		return err
	}
	if *text {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		if err := blktrace.WriteText(f, tr); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	} else if err := blktrace.WriteFile(*outPath, tr); err != nil {
		return err
	}
	st := blktrace.ComputeStats(tr)
	fmt.Fprintf(out, "wrote %s: %d IOs in %d bunches, peak %.0f IOPS / %.2f MBPS\n",
		*outPath, st.IOs, st.Bunches, st.MeanIOPS, st.MeanMBPS)
	return nil
}
