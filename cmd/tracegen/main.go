// Command tracegen is the standalone IOmeter-style workload generator:
// it drives a simulated array at peak intensity under a configured
// workload mode and writes the collected blktrace-format trace — the
// tool the paper uses to populate its 125-trace repository, usable
// without the rest of the framework.
//
// It has two mutually exclusive generation sources:
//
//	parametric:   tracegen -out trace.replay [-device hdd|ssd] [-size 4096]
//	              [-read 0.5] [-random 0.5] [-duration 2s] [-qd 8]
//	profile:      tracegen -from-profile profile.json {-out trace.replay | -repo DIR}
//	              [-scale 1.0] [-bunches N] [-read-mix F]
//	              [-periods diurnal|flash-crowd|multi-tenant|spec.json [-periods-duration D]]
//
// Common flags: [-text] [-seed 1].  A profile comes from `tracer
// analyze`; synthesis is seed-deterministic, so the same profile and
// seed always produce a byte-identical trace.  With -repo the derived
// trace is stored in the repository under the derived-name scheme
// instead of (or in addition to) -out.
//
// -periods turns on nonstationary multi-period synthesis: the profile
// is replayed window by window under a named preset or a JSON
// MultiPeriodSpec file (each window has its own load scale and read
// mix), producing diurnal swings, flash crowds or multi-tenant phase
// interleavings for cache warm-up/decay studies.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/blktrace"
	"repro/internal/experiments"
	"repro/internal/repository"
	"repro/internal/simtime"
	"repro/internal/synth"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// parametricFlags and profileFlags partition the flag set by generation
// source; setting a flag from the wrong partition is an error, caught in
// checkFlagSources via fs.Visit.
var (
	parametricFlags = map[string]bool{
		"device": true, "size": true, "read": true, "random": true,
		"duration": true, "qd": true,
	}
	profileFlags = map[string]bool{
		"scale": true, "bunches": true, "read-mix": true, "repo": true,
		"periods": true, "periods-duration": true,
	}
)

// checkFlagSources rejects flags that do not belong to the selected
// generation source, naming the offenders and the fix.
func checkFlagSources(fs *flag.FlagSet, fromProfile bool) error {
	var wrong []string
	fs.Visit(func(f *flag.Flag) {
		if fromProfile && parametricFlags[f.Name] {
			wrong = append(wrong, "-"+f.Name)
		}
		if !fromProfile && profileFlags[f.Name] {
			wrong = append(wrong, "-"+f.Name)
		}
	})
	if len(wrong) == 0 {
		return nil
	}
	if fromProfile {
		return fmt.Errorf("%s configure the parametric generator and conflict with -from-profile (the profile already fixes the workload shape)", wrong)
	}
	return fmt.Errorf("%s only apply when synthesizing from a profile; add -from-profile profile.json or drop them", wrong)
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	outPath := fs.String("out", "", "output trace file")
	device := fs.String("device", "hdd", "array kind: hdd or ssd")
	size := fs.Int64("size", 4096, "request size in bytes")
	read := fs.Float64("read", 0.5, "read ratio [0,1]")
	random := fs.Float64("random", 0.5, "random ratio [0,1]")
	duration := fs.Duration("duration", 2_000_000_000, "collection duration (virtual time)")
	qd := fs.Int("qd", 8, "outstanding IOs (queue depth)")
	text := fs.Bool("text", false, "write the text format instead of binary")
	seed := fs.Uint64("seed", 1, "generator seed")
	fromProfile := fs.String("from-profile", "", "synthesize from this workload profile JSON instead of the parametric generator")
	scale := fs.Float64("scale", 1, "profile synthesis: arrival-rate multiplier")
	bunches := fs.Int("bunches", 0, "profile synthesis: bunch count (0 = same as profile)")
	readMix := fs.Float64("read-mix", -1, "profile synthesis: override read ratio [0,1] (-1 = keep profile's)")
	repoDir := fs.String("repo", "", "profile synthesis: also store the trace in this repository under the derived-name scheme")
	periods := fs.String("periods", "", "profile synthesis: nonstationary windows — a preset (diurnal, flash-crowd, multi-tenant) or a MultiPeriodSpec JSON file")
	periodsDuration := fs.Duration("periods-duration", 10*60*1_000_000_000, "profile synthesis: total duration a -periods preset is scaled to")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkFlagSources(fs, *fromProfile != ""); err != nil {
		return err
	}
	if *periods == "" {
		var stray bool
		fs.Visit(func(f *flag.Flag) { stray = stray || f.Name == "periods-duration" })
		if stray {
			return fmt.Errorf("-periods-duration requires -periods")
		}
	}
	if *fromProfile != "" {
		opts := workload.SynthOptions{
			Seed:      *seed,
			Bunches:   *bunches,
			LoadScale: *scale,
			ReadRatio: *readMix,
		}
		if *periods != "" {
			if *bunches != 0 || *scale != 1 {
				return fmt.Errorf("-bunches and -scale conflict with -periods (each window sizes and scales itself)")
			}
			spec, err := loadPeriods(*periods, simtime.FromStd(*periodsDuration))
			if err != nil {
				return err
			}
			return runMultiPeriod(*fromProfile, *outPath, *repoDir, *text, spec, opts, out)
		}
		return runFromProfile(*fromProfile, *outPath, *repoDir, *text, opts, out)
	}
	if *outPath == "" {
		return fmt.Errorf("-out is required")
	}
	kind, err := experiments.KindFromString(*device)
	if err != nil {
		return err
	}
	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	engine, array, err := experiments.NewSystem(cfg, kind)
	if err != nil {
		return err
	}
	tr, err := synth.Collect(engine, array, synth.CollectParams{
		Mode:            synth.Mode{RequestBytes: *size, ReadRatio: *read, RandomRatio: *random},
		Duration:        simtime.FromStd(*duration),
		QueueDepth:      *qd,
		WorkingSetBytes: cfg.WorkingSet,
		Seed:            *seed,
	})
	if err != nil {
		return err
	}
	if err := writeTrace(*outPath, tr, *text); err != nil {
		return err
	}
	st := blktrace.ComputeStats(tr)
	fmt.Fprintf(out, "wrote %s: %d IOs in %d bunches, peak %.0f IOPS / %.2f MBPS\n",
		*outPath, st.IOs, st.Bunches, st.MeanIOPS, st.MeanMBPS)
	return nil
}

// runFromProfile synthesizes a trace from an analyzed workload profile
// and writes it to a file, a repository, or both.
func runFromProfile(profilePath, outPath, repoDir string, text bool, opts workload.SynthOptions, out io.Writer) error {
	if outPath == "" && repoDir == "" {
		return fmt.Errorf("-from-profile needs a destination: -out FILE and/or -repo DIR")
	}
	profile, err := workload.ReadProfile(profilePath)
	if err != nil {
		return err
	}
	tr, err := workload.Synthesize(profile, opts)
	if err != nil {
		return err
	}
	st := blktrace.ComputeStats(tr)
	if outPath != "" {
		if err := writeTrace(outPath, tr, text); err != nil {
			return err
		}
		fmt.Fprintf(out, "synthesized %s from %s (seed %d): %d IOs in %d bunches, %.0f IOPS / %.2f MBPS offered\n",
			outPath, profile.Name, opts.Seed, st.IOs, st.Bunches, st.MeanIOPS, st.MeanMBPS)
	}
	if repoDir != "" {
		repo, err := repository.Open(repoDir)
		if err != nil {
			return err
		}
		// File under the source trace's device so the derived entry sits
		// next to the traces it models.
		entry, err := repo.StoreDerived(profile.Device, profile.Name, opts.Seed, tr)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "stored %s: %d IOs in %d bunches, %.0f IOPS / %.2f MBPS offered\n",
			filepath.Base(entry.Path), st.IOs, st.Bunches, st.MeanIOPS, st.MeanMBPS)
	}
	return nil
}

// loadPeriods resolves -periods: a preset name scaled to total, or a
// JSON MultiPeriodSpec file (validated with labelled errors before any
// synthesis runs).
func loadPeriods(arg string, total simtime.Duration) (workload.MultiPeriodSpec, error) {
	switch arg {
	case "diurnal", "flash-crowd", "multi-tenant":
		return workload.PresetSpec(arg, total)
	}
	blob, err := os.ReadFile(arg)
	if err != nil {
		return workload.MultiPeriodSpec{}, fmt.Errorf("-periods %q is neither a preset (diurnal, flash-crowd, multi-tenant) nor a readable spec file: %w", arg, err)
	}
	var spec workload.MultiPeriodSpec
	if err := json.Unmarshal(blob, &spec); err != nil {
		return workload.MultiPeriodSpec{}, fmt.Errorf("periods spec %s: %w", arg, err)
	}
	if err := spec.Validate(); err != nil {
		return workload.MultiPeriodSpec{}, err
	}
	return spec, nil
}

// runMultiPeriod synthesizes a nonstationary trace from a profile and a
// window spec and writes it like runFromProfile.
func runMultiPeriod(profilePath, outPath, repoDir string, text bool, spec workload.MultiPeriodSpec, opts workload.SynthOptions, out io.Writer) error {
	if outPath == "" && repoDir == "" {
		return fmt.Errorf("-from-profile needs a destination: -out FILE and/or -repo DIR")
	}
	profile, err := workload.ReadProfile(profilePath)
	if err != nil {
		return err
	}
	tr, err := workload.SynthesizeMulti(profile, spec, opts)
	if err != nil {
		return err
	}
	st := blktrace.ComputeStats(tr)
	if outPath != "" {
		if err := writeTrace(outPath, tr, text); err != nil {
			return err
		}
		fmt.Fprintf(out, "synthesized %s from %s x %s (%d windows, seed %d): %d IOs in %d bunches over %.1fs\n",
			outPath, profile.Name, spec.Name, len(spec.Periods), opts.Seed, st.IOs, st.Bunches, st.Duration.Seconds())
	}
	if repoDir != "" {
		repo, err := repository.Open(repoDir)
		if err != nil {
			return err
		}
		entry, err := repo.StoreDerived(profile.Device, profile.Name+"-"+spec.Name, opts.Seed, tr)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "stored %s: %d IOs in %d bunches over %.1fs\n",
			filepath.Base(entry.Path), st.IOs, st.Bunches, st.Duration.Seconds())
	}
	return nil
}

// writeTrace writes a trace in the binary or text format.
func writeTrace(path string, tr *blktrace.Trace, text bool) error {
	if !text {
		return blktrace.WriteFile(path, tr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := blktrace.WriteText(f, tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
