package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/blktrace"
)

func TestGenerateBinaryTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.replay")
	var buf bytes.Buffer
	err := run([]string{"-out", out, "-size", "8192", "-read", "1", "-random", "0", "-duration", "1s"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote") {
		t.Fatalf("output: %s", buf.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := blktrace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	st := blktrace.ComputeStats(tr)
	if st.ReadRatio != 1 || st.AvgRequestBytes != 8192 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGenerateTextTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.txt")
	var buf bytes.Buffer
	if err := run([]string{"-out", out, "-text", "-duration", "500ms", "-device", "ssd"}, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := blktrace.ReadText(f); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{}, &buf); err == nil {
		t.Fatal("missing -out accepted")
	}
	if err := run([]string{"-out", "x", "-device", "zip"}, &buf); err == nil {
		t.Fatal("bad device accepted")
	}
	if err := run([]string{"-out", filepath.Join(t.TempDir(), "x"), "-size", "-4"}, &buf); err == nil {
		t.Fatal("bad size accepted")
	}
}
