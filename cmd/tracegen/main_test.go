package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/blktrace"
	"repro/internal/repository"
	"repro/internal/workload"
)

func TestGenerateBinaryTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.replay")
	var buf bytes.Buffer
	err := run([]string{"-out", out, "-size", "8192", "-read", "1", "-random", "0", "-duration", "1s"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote") {
		t.Fatalf("output: %s", buf.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := blktrace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	st := blktrace.ComputeStats(tr)
	if st.ReadRatio != 1 || st.AvgRequestBytes != 8192 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGenerateTextTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.txt")
	var buf bytes.Buffer
	if err := run([]string{"-out", out, "-text", "-duration", "500ms", "-device", "ssd"}, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := blktrace.ReadText(f); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{}, &buf); err == nil {
		t.Fatal("missing -out accepted")
	}
	if err := run([]string{"-out", "x", "-device", "zip"}, &buf); err == nil {
		t.Fatal("bad device accepted")
	}
	if err := run([]string{"-out", filepath.Join(t.TempDir(), "x"), "-size", "-4"}, &buf); err == nil {
		t.Fatal("bad size accepted")
	}
}

// writeTestProfile builds a small profile by analyzing a parametric
// trace, giving the -from-profile tests a realistic input.
func writeTestProfile(t *testing.T, dir string) string {
	t.Helper()
	tracePath := filepath.Join(dir, "src.replay")
	var buf bytes.Buffer
	if err := run([]string{"-out", tracePath, "-duration", "1s"}, &buf); err != nil {
		t.Fatal(err)
	}
	tr, err := blktrace.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.Analyze(tr, "src")
	if err != nil {
		t.Fatal(err)
	}
	profilePath := filepath.Join(dir, "src.json")
	if err := workload.WriteProfile(profilePath, p); err != nil {
		t.Fatal(err)
	}
	return profilePath
}

func TestGenerateFromProfile(t *testing.T) {
	dir := t.TempDir()
	profilePath := writeTestProfile(t, dir)
	outPath := filepath.Join(dir, "derived.replay")
	repoDir := filepath.Join(dir, "repo")

	var buf bytes.Buffer
	err := run([]string{"-from-profile", profilePath, "-out", outPath, "-repo", repoDir, "-seed", "7"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "synthesized") || !strings.Contains(buf.String(), "stored") {
		t.Fatalf("output: %s", buf.String())
	}
	tr, err := blktrace.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumBunches() == 0 {
		t.Fatal("empty derived trace")
	}
	// The repository copy sits under the derived-name scheme and holds
	// the same trace.
	repo, err := repository.Open(repoDir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := repo.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !entries[0].IsDerived() ||
		entries[0].ProfileLabel != "src" || entries[0].Seed != 7 {
		t.Fatalf("entries = %+v", entries)
	}
	stored, err := repo.Load(entries[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, stored) {
		t.Fatal("file and repository copies differ")
	}

	// Same profile, same seed: byte-identical output.
	outPath2 := filepath.Join(dir, "derived2.replay")
	if err := run([]string{"-from-profile", profilePath, "-out", outPath2, "-seed", "7"}, &buf); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(outPath2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("same profile+seed produced different bytes")
	}

	// -scale and -bunches reshape the synthesis.
	outPath3 := filepath.Join(dir, "derived3.replay")
	if err := run([]string{"-from-profile", profilePath, "-out", outPath3, "-bunches", "10"}, &buf); err != nil {
		t.Fatal(err)
	}
	small, err := blktrace.ReadFile(outPath3)
	if err != nil {
		t.Fatal(err)
	}
	if small.NumBunches() != 10 {
		t.Fatalf("bunches = %d, want 10", small.NumBunches())
	}
}

// Each generation source must reject the other source's flags with a
// clear error, one case per rejection.
func TestFlagSourceRejections(t *testing.T) {
	dir := t.TempDir()
	profilePath := writeTestProfile(t, dir)
	out := filepath.Join(dir, "o.replay")

	parametricWithProfile := [][]string{
		{"-from-profile", profilePath, "-out", out, "-device", "ssd"},
		{"-from-profile", profilePath, "-out", out, "-size", "8192"},
		{"-from-profile", profilePath, "-out", out, "-read", "1"},
		{"-from-profile", profilePath, "-out", out, "-random", "0"},
		{"-from-profile", profilePath, "-out", out, "-duration", "1s"},
		{"-from-profile", profilePath, "-out", out, "-qd", "4"},
	}
	for _, args := range parametricWithProfile {
		var buf bytes.Buffer
		err := run(args, &buf)
		if err == nil {
			t.Errorf("run(%v) succeeded, want conflict error", args)
			continue
		}
		if !strings.Contains(err.Error(), "conflict with -from-profile") {
			t.Errorf("run(%v) error not labelled: %v", args, err)
		}
	}

	profileWithoutProfile := [][]string{
		{"-out", out, "-scale", "2"},
		{"-out", out, "-bunches", "5"},
		{"-out", out, "-read-mix", "0.5"},
		{"-out", out, "-repo", dir},
	}
	for _, args := range profileWithoutProfile {
		var buf bytes.Buffer
		err := run(args, &buf)
		if err == nil {
			t.Errorf("run(%v) succeeded, want source error", args)
			continue
		}
		if !strings.Contains(err.Error(), "-from-profile") {
			t.Errorf("run(%v) error not labelled: %v", args, err)
		}
	}

	// A profile synthesis with no destination is an error too.
	var buf bytes.Buffer
	if err := run([]string{"-from-profile", profilePath}, &buf); err == nil {
		t.Error("destination-less -from-profile accepted")
	}
	// Common flags stay usable with both sources.
	if err := run([]string{"-from-profile", profilePath, "-out", out, "-seed", "3", "-text"}, &buf); err != nil {
		t.Errorf("common flags rejected: %v", err)
	}
}
