package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/host"
	"repro/internal/netproto"
	"repro/internal/repository"
	"repro/internal/simtime"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

func TestOneshotRoles(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-role", "analyzer", "-oneshot"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "analyzer listening") {
		t.Fatalf("output: %s", buf.String())
	}
	buf.Reset()
	if err := run([]string{"-role", "generator", "-repo", t.TempDir(), "-oneshot"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "generator listening") {
		t.Fatalf("output: %s", buf.String())
	}
}

func TestBadRole(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-role", "mailman"}, &buf); err == nil {
		t.Fatal("bad role accepted")
	}
	if err := run([]string{"-role", "host"}, &buf); err == nil {
		t.Fatal("host without generator accepted")
	}
	if err := run([]string{"-role", "generator", "-device", "tape", "-repo", t.TempDir(), "-oneshot"}, &buf); err == nil {
		t.Fatal("bad device accepted")
	}
}

// syncBuffer lets the test read run()'s output while run() is still
// writing from its own goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var addrRE = regexp.MustCompile(`on (127\.0\.0\.1:\d+)`)

// TestGeneratorGracefulShutdownFlushesTelemetry is the graceful-
// shutdown satellite: a generator with -telemetry-dir serves a test,
// exposes the live registry over -debug-addr, and on SIGTERM drains
// and flushes the full artifact set before run() returns.
func TestGeneratorGracefulShutdownFlushesTelemetry(t *testing.T) {
	repoDir := t.TempDir()
	repo, err := repository.Open(repoDir)
	if err != nil {
		t.Fatal(err)
	}
	p := synth.DefaultWebServer()
	p.Duration = simtime.Second
	entry, err := repo.StoreReal("raid5-hdd", "web", synth.WebServerTrace(p))
	if err != nil {
		t.Fatal(err)
	}
	traceName := filepath.Base(entry.Path)

	// Intercept signal registration so the test can deliver a synthetic
	// SIGTERM exactly when it wants to.
	sigCh := make(chan chan os.Signal, 1)
	old := notifySignals
	notifySignals = func(ch chan os.Signal) { sigCh <- ch }
	defer func() { notifySignals = old }()

	telDir := filepath.Join(t.TempDir(), "telemetry")
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-role", "generator", "-repo", repoDir,
			"-telemetry-dir", telDir, "-debug-addr", "127.0.0.1:0",
		}, out)
	}()

	var ch chan os.Signal
	select {
	case ch = <-sigCh: // generator is listening; addresses are printed
	case err := <-done:
		t.Fatalf("run exited early: %v\n%s", err, out.String())
	}
	addrs := addrRE.FindAllStringSubmatch(out.String(), -1)
	if len(addrs) != 2 {
		t.Fatalf("expected debug + generator addresses in output:\n%s", out.String())
	}
	debugAddr, genAddr := addrs[0][1], addrs[1][1]

	h, err := cluster.Dial(genAddr, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	outcome, err := h.RunTest(netproto.StartTest{TraceName: traceName, LoadProportion: 1},
		"raid5-hdd", host.ModeVector{LoadProportion: 1})
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	if outcome.Result.IOs == 0 {
		t.Fatal("test completed no IOs")
	}

	// The live registry is visible over expvar while the daemon runs.
	resp, err := http.Get("http://" + debugAddr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"replay.completed"`) {
		t.Fatalf("/debug/vars missing telemetry snapshot:\n%.2000s", body)
	}

	ch <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not return after SIGTERM")
	}
	if !strings.Contains(out.String(), "telemetry flushed to "+telDir) {
		t.Fatalf("flush not reported:\n%s", out.String())
	}
	sum, err := telemetry.ReadSummary(telDir)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Spans == 0 {
		t.Fatalf("flushed telemetry has no spans: %+v", sum)
	}
	for _, f := range []string{telemetry.SeriesFile, telemetry.EventsFile, telemetry.ChromeFile} {
		if _, err := os.Stat(filepath.Join(telDir, f)); err != nil {
			t.Fatalf("artifact %s missing: %v", f, err)
		}
	}
}
