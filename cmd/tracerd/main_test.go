package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestOneshotRoles(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-role", "analyzer", "-oneshot"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "analyzer listening") {
		t.Fatalf("output: %s", buf.String())
	}
	buf.Reset()
	if err := run([]string{"-role", "generator", "-repo", t.TempDir(), "-oneshot"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "generator listening") {
		t.Fatalf("output: %s", buf.String())
	}
}

func TestBadRole(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-role", "mailman"}, &buf); err == nil {
		t.Fatal("bad role accepted")
	}
	if err := run([]string{"-role", "host"}, &buf); err == nil {
		t.Fatal("host without generator accepted")
	}
	if err := run([]string{"-role", "generator", "-device", "tape", "-repo", t.TempDir(), "-oneshot"}, &buf); err == nil {
		t.Fatal("bad device accepted")
	}
}
