// Command tracerd runs TRACER's distributed agents (paper Fig. 3): a
// workload generator owning a simulated array and a trace repository,
// or a multi-channel power analyzer.  An evaluation host (cmd/tracer or
// the cluster API) connects over TCP to drive tests.
//
// Usage:
//
//	tracerd -role analyzer  -listen 127.0.0.1:7071
//	tracerd -role generator -listen 127.0.0.1:7070 -repo traces \
//	        [-device hdd|ssd] [-analyzer 127.0.0.1:7071] [-channel ch0] \
//	        [-telemetry-dir DIR] [-debug-addr 127.0.0.1:6060] [-slo spec.json]
//	tracerd -role host -generator 127.0.0.1:7070 -analyzer 127.0.0.1:7071 \
//	        -trace NAME -loads 10,50,100 [-db results.json]
//
// A generator with -telemetry-dir instruments every test it serves and,
// on SIGINT/SIGTERM, flushes the full artifact set (summary.json,
// series.csv, events.jsonl, trace.json) before exiting.  -debug-addr
// serves net/http/pprof, an expvar snapshot of the live telemetry
// registry at /debug/vars, the Prometheus text exposition at /metrics,
// and — with -slo — the latest run's SLO evaluation as JSON at /slo.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/host"
	"repro/internal/netproto"
	"repro/internal/repository"
	"repro/internal/slo"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracerd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracerd", flag.ContinueOnError)
	role := fs.String("role", "", "agent role: generator, analyzer or host")
	listen := fs.String("listen", "127.0.0.1:0", "listen address (generator/analyzer)")
	repoDir := fs.String("repo", "traces", "trace repository directory (generator)")
	device := fs.String("device", "hdd", "array kind the generator provisions")
	analyzerAddr := fs.String("analyzer", "", "power analyzer address")
	channel := fs.String("channel", "ch0", "power analyzer channel name (generator)")
	generatorAddr := fs.String("generator", "", "generator address (host)")
	traceName := fs.String("trace", "", "trace to test (host)")
	loadsStr := fs.String("loads", "100", "load percentages (host)")
	dbPath := fs.String("db", "", "results database file (host)")
	telemetryDir := fs.String("telemetry-dir", "", "instrument tests and flush telemetry here on shutdown (generator)")
	debugAddr := fs.String("debug-addr", "", "serve pprof + expvar + /metrics + /slo on this address (generator)")
	sloPath := fs.String("slo", "", "SLO spec JSON evaluated over every test (generator; \"example\" for the built-in spec)")
	oneshot := fs.Bool("oneshot", false, "exit after binding (tests)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := log.New(os.Stderr, "tracerd ", log.LstdFlags)

	switch *role {
	case "analyzer":
		a := cluster.NewAnalyzerAgent(logger)
		addr, err := a.Listen(*listen)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "analyzer listening on %s\n", addr)
		if *oneshot {
			return a.Close()
		}
		waitForSignal()
		return a.Close()

	case "generator":
		repo, err := repository.Open(*repoDir)
		if err != nil {
			return err
		}
		kind, err := experiments.KindFromString(*device)
		if err != nil {
			return err
		}
		factory := func() (*cluster.SystemUnderTest, error) {
			e, a, err := experiments.NewSystem(experiments.DefaultConfig(), kind)
			if err != nil {
				return nil, err
			}
			return &cluster.SystemUnderTest{Engine: e, Device: a, Power: a.PowerSource(), Name: kind.String()}, nil
		}
		g := cluster.NewGeneratorAgent(repo, factory, *analyzerAddr, *channel, logger)
		var set *telemetry.Set
		if *telemetryDir != "" || *debugAddr != "" {
			set = telemetry.New(telemetry.Options{})
			g.AttachTelemetry(set)
		}
		if *sloPath != "" {
			spec, err := slo.LoadSpec(*sloPath)
			if err != nil {
				return err
			}
			g.AttachSLO(spec)
		}
		if *debugAddr != "" {
			addr, err := serveDebug(*debugAddr, set, g)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "debug server on %s (pprof, /debug/vars, /metrics, /slo)\n", addr)
		}
		addr, err := g.Listen(*listen)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "generator listening on %s (repo %s, device %s)\n", addr, *repoDir, kind)
		if *oneshot {
			return flushTelemetry(g.Close(), set, *telemetryDir, out)
		}
		waitForSignal()
		// Graceful shutdown: stop accepting, wait for in-flight tests,
		// then export the telemetry accumulated over the daemon's life.
		return flushTelemetry(g.Close(), set, *telemetryDir, out)

	case "host":
		if *generatorAddr == "" || *traceName == "" {
			return fmt.Errorf("host role requires -generator and -trace")
		}
		var db *host.DB
		var err error
		if *dbPath != "" {
			if db, err = host.LoadDB(*dbPath); err != nil {
				return err
			}
		}
		h, err := cluster.Dial(*generatorAddr, *analyzerAddr, db)
		if err != nil {
			return err
		}
		defer h.Close()
		fmt.Fprintln(out, "load%\tIOPS\tMBPS\twatts\tIOPS/W")
		for _, part := range strings.Split(*loadsStr, ",") {
			pct, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil || pct <= 0 {
				return fmt.Errorf("bad load %q", part)
			}
			load := pct / 100
			outcome, err := h.RunTest(netproto.StartTest{TraceName: *traceName, LoadProportion: load},
				*device, host.ModeVector{LoadProportion: load})
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%.0f\t%.1f\t%.3f\t%.1f\t%.3f\n",
				pct, outcome.Result.IOPS, outcome.Result.MBPS,
				outcome.Power.MeanWatts, outcome.Record.Efficiency.IOPSPerWatt)
		}
		if db != nil {
			if err := db.Save(*dbPath); err != nil {
				return err
			}
			fmt.Fprintf(out, "saved %d records to %s\n", db.Len(), *dbPath)
		}
		return nil

	default:
		return fmt.Errorf("unknown role %q (want generator, analyzer or host)", *role)
	}
}

// flushTelemetry exports the set into dir after the agent has drained
// (closeErr is the agent's Close result).  Export errors never mask a
// close error; both reach the caller's exit status.
func flushTelemetry(closeErr error, set *telemetry.Set, dir string, out io.Writer) error {
	if set == nil || dir == "" {
		return closeErr
	}
	if err := set.WriteDir(dir); err != nil {
		if closeErr != nil {
			return fmt.Errorf("%w (and telemetry flush failed: %v)", closeErr, err)
		}
		return err
	}
	fmt.Fprintf(out, "telemetry flushed to %s\n", dir)
	return closeErr
}

// debugRegistry is the registry the expvar and /metrics handlers read,
// and debugGenerator backs /slo; package atomics (re-pointed per run)
// because expvar.Publish and http.HandleFunc panic on duplicate
// registration, so the names bind once per process.
var (
	debugRegistry  atomic.Pointer[telemetry.Registry]
	debugGenerator atomic.Pointer[cluster.GeneratorAgent]
	publishOnce    sync.Once
)

// serveDebug starts the debug HTTP server on addr: net/http/pprof (via
// its DefaultServeMux side-effect import), /debug/vars carrying a
// "telemetry" snapshot of the live registry, /metrics serving the same
// registry in Prometheus text format, and /slo serving the latest SLO
// run's evaluation.  Counters and histogram digests only; probe
// callbacks are skipped because they read sim-goroutine-owned state.
func serveDebug(addr string, set *telemetry.Set, g *cluster.GeneratorAgent) (net.Addr, error) {
	debugRegistry.Store(set.Registry())
	debugGenerator.Store(g)
	publishOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any {
			return debugRegistry.Load().Snapshot()
		}))
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := debugRegistry.Load().WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		http.HandleFunc("/slo", func(w http.ResponseWriter, _ *http.Request) {
			st, ok := debugGenerator.Load().SLOStatus()
			if !ok {
				http.Error(w, "no SLO-evaluated run yet (start tests with -slo attached)", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(st)
		})
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug listen: %w", err)
	}
	go func() { _ = http.Serve(ln, nil) }()
	return ln.Addr(), nil
}

// notifySignals registers ch for the shutdown signals; a variable so
// tests can substitute a synthetic signal source.
var notifySignals = func(ch chan os.Signal) {
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	notifySignals(ch)
	<-ch
}
