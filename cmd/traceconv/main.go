// Command traceconv is the trace-format transformer (paper Section
// III-A2): it converts HP SRT-style trace files into the blktrace
// ".replay" format TRACER loads.  It also converts binary replay files
// to the readable text format and back.
//
// Usage:
//
//	traceconv -in cello.srt -out cello.replay [-srcdev disk3] [-window 100us] [-outdev cello99]
//	traceconv -in t.replay -out t.txt -mode bin2text
//	traceconv -in t.txt -out t.replay -mode text2bin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/blktrace"
	"repro/internal/simtime"
	"repro/internal/srt"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "traceconv:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("traceconv", flag.ContinueOnError)
	in := fs.String("in", "", "input file (required)")
	outPath := fs.String("out", "", "output file (required)")
	mode := fs.String("mode", "srt", "conversion: srt, bin2text or text2bin")
	srcDev := fs.String("srcdev", "", "srt: filter records to one source device")
	outDev := fs.String("outdev", "", "srt: device label for the output trace")
	window := fs.Duration("window", 100_000, "srt: bunch coalescing window")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *outPath == "" {
		return fmt.Errorf("-in and -out are required")
	}
	var tr *blktrace.Trace
	var err error
	switch *mode {
	case "bin2text":
		tr, err = blktrace.ReadFile(*in)
	case "srt", "text2bin":
		var src *os.File
		src, err = os.Open(*in)
		if err != nil {
			return err
		}
		if *mode == "srt" {
			tr, err = srt.ConvertStream(src, srt.ConvertOptions{
				Device:       *srcDev,
				OutputDevice: *outDev,
				BunchWindow:  simtime.FromStd(*window),
			})
		} else {
			tr, err = blktrace.ReadText(src)
		}
		src.Close()
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		return err
	}

	if *mode == "bin2text" {
		dst, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		if err := blktrace.WriteText(dst, tr); err != nil {
			dst.Close()
			return err
		}
		if err := dst.Close(); err != nil {
			return err
		}
	} else if err := blktrace.WriteFile(*outPath, tr); err != nil {
		return err
	}
	st := blktrace.ComputeStats(tr)
	fmt.Fprintf(out, "converted %s -> %s (%s): %d IOs, %d bunches, %.3fs\n",
		*in, *outPath, *mode, st.IOs, st.Bunches, st.Duration.Seconds())
	return nil
}
