// Command traceconv is the trace-format transformer (paper Section
// III-A2): it converts HP SRT-style trace files into the blktrace
// ".replay" format TRACER loads, between the binary and readable text
// formats, and into the memory-mapped ".rmap" format the sharded
// replayer consumes zero-copy.
//
// Conversions stream bunch-by-bunch — the full record set is never
// materialized — except from SRT sources, whose unsorted timestamps
// force a global sort before bunching.
//
// Usage:
//
//	traceconv -in cello.srt -out cello.replay [-srcdev disk3] [-window 100us] [-outdev cello99]
//	traceconv -in t.replay -out t.txt -mode bin2text
//	traceconv -in t.txt -out t.replay -mode text2bin
//	traceconv -in t.replay -out t.rmap -mode bin2map
//	traceconv -in t.rmap -out t.replay -mode map2bin
//
// The general form of -mode is <from>2<to> with from one of srt, bin,
// text, map and to one of bin, text, map; plain "srt" means srt2bin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/blktrace"
	"repro/internal/simtime"
	"repro/internal/srt"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "traceconv:", err)
		os.Exit(1)
	}
}

// bunchWriter is the streaming sink shared by all output formats.
type bunchWriter interface {
	WriteBunch(blktrace.Bunch) error
	Close() error
}

// mappedSink adapts MappedWriter's (time, packages) signature.
type mappedSink struct{ w *blktrace.MappedWriter }

func (s mappedSink) WriteBunch(b blktrace.Bunch) error { return s.w.WriteBunch(b.Time, b.Packages) }
func (s mappedSink) Close() error                      { return s.w.Close() }

// scanSource pushes a trace through the streaming callbacks: device
// first, then each bunch in order with a reusable package buffer.
type scanSource func(device func(string) error, fn blktrace.ScanFunc) error

func parseMode(mode string) (from, to string, err error) {
	if mode == "srt" {
		return "srt", "bin", nil
	}
	parts := strings.SplitN(mode, "2", 2)
	if len(parts) != 2 {
		return "", "", fmt.Errorf("unknown mode %q", mode)
	}
	from, to = parts[0], parts[1]
	switch from {
	case "srt", "bin", "text", "map":
	default:
		return "", "", fmt.Errorf("unknown source format %q", from)
	}
	switch to {
	case "bin", "text", "map":
	default:
		return "", "", fmt.Errorf("unknown output format %q", to)
	}
	return from, to, nil
}

func newSource(from, path string, opts srt.ConvertOptions) (scanSource, func() error, error) {
	nop := func() error { return nil }
	switch from {
	case "bin", "text", "srt":
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		switch from {
		case "bin":
			return func(dev func(string) error, fn blktrace.ScanFunc) error {
				return blktrace.ScanBinary(f, dev, fn)
			}, f.Close, nil
		case "text":
			return func(dev func(string) error, fn blktrace.ScanFunc) error {
				return blktrace.ScanText(f, dev, fn)
			}, f.Close, nil
		default:
			// SRT records may arrive out of order; conversion sorts
			// globally, so this source alone materializes.
			return func(dev func(string) error, fn blktrace.ScanFunc) error {
				tr, err := srt.ConvertStream(f, opts)
				if err != nil {
					return err
				}
				if err := dev(tr.Device); err != nil {
					return err
				}
				for _, b := range tr.Bunches {
					if err := fn(b); err != nil {
						return err
					}
				}
				return nil
			}, f.Close, nil
		}
	case "map":
		m, err := blktrace.OpenMapped(path)
		if err != nil {
			return nil, nil, err
		}
		return func(dev func(string) error, fn blktrace.ScanFunc) error {
			return blktrace.ScanMapped(m, dev, fn)
		}, m.Close, nil
	}
	return nil, nop, fmt.Errorf("unknown source format %q", from)
}

func newSink(to string, f *os.File, device string) (bunchWriter, error) {
	switch to {
	case "bin":
		return blktrace.NewBinaryStreamWriter(f, device)
	case "text":
		return blktrace.NewTextStreamWriter(f, device)
	case "map":
		w, err := blktrace.NewMappedWriter(f, device)
		if err != nil {
			return nil, err
		}
		return mappedSink{w}, nil
	}
	return nil, fmt.Errorf("unknown output format %q", to)
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("traceconv", flag.ContinueOnError)
	in := fs.String("in", "", "input file (required)")
	outPath := fs.String("out", "", "output file (required)")
	mode := fs.String("mode", "srt", "conversion <from>2<to>: srt, bin2text, text2bin, bin2map, map2bin, ...")
	srcDev := fs.String("srcdev", "", "srt: filter records to one source device")
	outDev := fs.String("outdev", "", "srt: device label for the output trace")
	window := fs.Duration("window", 100_000, "srt: bunch coalescing window")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *outPath == "" {
		return fmt.Errorf("-in and -out are required")
	}
	from, to, err := parseMode(*mode)
	if err != nil {
		return err
	}

	scan, closeSrc, err := newSource(from, *in, srt.ConvertOptions{
		Device:       *srcDev,
		OutputDevice: *outDev,
		BunchWindow:  simtime.FromStd(*window),
	})
	if err != nil {
		return err
	}
	defer closeSrc()

	dst, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	var (
		w        bunchWriter
		ios      int64
		bunches  int64
		duration simtime.Duration
	)
	err = scan(
		func(dev string) error {
			w, err = newSink(to, dst, dev)
			return err
		},
		func(b blktrace.Bunch) error {
			ios += int64(len(b.Packages))
			bunches++
			duration = b.Time
			return w.WriteBunch(b)
		})
	if err == nil && w != nil {
		err = w.Close()
	}
	if err != nil {
		dst.Close()
		return err
	}
	if err := dst.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "converted %s -> %s (%s): %d IOs, %d bunches, %.3fs\n",
		*in, *outPath, *mode, ios, bunches, duration.Seconds())
	return nil
}
