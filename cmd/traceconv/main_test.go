package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/blktrace"
	"repro/internal/srt"
	"repro/internal/storage"
)

func writeSRT(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "in.srt")
	recs := []srt.Record{
		{Timestamp: 10.0, Device: "disk0", StartByte: 0, Length: 4096, Op: storage.Read},
		{Timestamp: 10.00005, Device: "disk0", StartByte: 8192, Length: 8192, Op: storage.Write},
		{Timestamp: 11.0, Device: "disk1", StartByte: 512, Length: 512, Op: storage.Read},
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := srt.WriteRecords(f, recs); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

func TestSRTConversion(t *testing.T) {
	dir := t.TempDir()
	in := writeSRT(t, dir)
	out := filepath.Join(dir, "out.replay")
	var buf bytes.Buffer
	if err := run([]string{"-in", in, "-out", out, "-srcdev", "disk0", "-outdev", "cello"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2 IOs") {
		t.Fatalf("output: %s", buf.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := blktrace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Device != "cello" || tr.NumIOs() != 2 {
		t.Fatalf("trace = %s, %d IOs", tr.Device, tr.NumIOs())
	}
}

func TestBinTextRoundTripViaCLI(t *testing.T) {
	dir := t.TempDir()
	in := writeSRT(t, dir)
	bin := filepath.Join(dir, "t.replay")
	txt := filepath.Join(dir, "t.txt")
	bin2 := filepath.Join(dir, "t2.replay")
	var buf bytes.Buffer
	if err := run([]string{"-in", in, "-out", bin}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", bin, "-out", txt, "-mode", "bin2text"}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", txt, "-out", bin2, "-mode", "text2bin"}, &buf); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(bin)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(bin2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("bin -> text -> bin round trip changed the file")
	}
}

// TestMappedRoundTripViaCLI drives bin -> map -> bin and bin -> map ->
// text -> bin through the streaming converter and requires byte
// identity with the direct conversion.
func TestMappedRoundTripViaCLI(t *testing.T) {
	dir := t.TempDir()
	in := writeSRT(t, dir)
	bin := filepath.Join(dir, "t.replay")
	rmap := filepath.Join(dir, "t.rmap")
	bin2 := filepath.Join(dir, "t2.replay")
	txt := filepath.Join(dir, "t.txt")
	var buf bytes.Buffer
	if err := run([]string{"-in", in, "-out", bin}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", bin, "-out", rmap, "-mode", "bin2map"}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", rmap, "-out", bin2, "-mode", "map2bin"}, &buf); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(bin)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(bin2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("bin -> map -> bin round trip changed the file")
	}
	if err := run([]string{"-in", rmap, "-out", txt, "-mode", "map2text"}, &buf); err != nil {
		t.Fatal(err)
	}
	tr, err := blktrace.ReadFile(bin)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(txt)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	trTxt, err := blktrace.ReadText(f)
	if err != nil {
		t.Fatal(err)
	}
	if trTxt.Device != tr.Device || trTxt.NumIOs() != tr.NumIOs() || trTxt.NumBunches() != tr.NumBunches() {
		t.Fatalf("map2text mismatch: %s %d/%d vs %s %d/%d", trTxt.Device, trTxt.NumIOs(), trTxt.NumBunches(),
			tr.Device, tr.NumIOs(), tr.NumBunches())
	}
}

// TestCorruptMappedInputFails is the regression gate: a truncated .rmap
// mapping must fail conversion with the labelled format error, not
// panic or produce a silently wrong output file.
func TestCorruptMappedInputFails(t *testing.T) {
	dir := t.TempDir()
	in := writeSRT(t, dir)
	bin := filepath.Join(dir, "t.replay")
	rmap := filepath.Join(dir, "t.rmap")
	var buf bytes.Buffer
	if err := run([]string{"-in", in, "-out", bin}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", bin, "-out", rmap, "-mode", "bin2map"}, &buf); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(rmap)
	if err != nil {
		t.Fatal(err)
	}
	for name, mut := range map[string][]byte{
		"truncated": good[:len(good)-5],
		"garbled":   append(append([]byte{}, good[:9]...), bytes.Repeat([]byte{0xFF}, 16)...),
	} {
		bad := filepath.Join(dir, name+".rmap")
		if err := os.WriteFile(bad, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		err := run([]string{"-in", bad, "-out", filepath.Join(dir, name+".out"), "-mode", "map2bin"}, &buf)
		if !errors.Is(err, blktrace.ErrBadFormat) {
			t.Errorf("%s: got %v, want ErrBadFormat", name, err)
		}
	}
}

func TestConvErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{}, &buf); err == nil {
		t.Fatal("missing flags accepted")
	}
	if err := run([]string{"-in", "nope.srt", "-out", "x"}, &buf); err == nil {
		t.Fatal("missing input accepted")
	}
	dir := t.TempDir()
	in := writeSRT(t, dir)
	if err := run([]string{"-in", in, "-out", filepath.Join(dir, "x"), "-mode", "magic"}, &buf); err == nil {
		t.Fatal("bad mode accepted")
	}
}
