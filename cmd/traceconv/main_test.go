package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/blktrace"
	"repro/internal/srt"
	"repro/internal/storage"
)

func writeSRT(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "in.srt")
	recs := []srt.Record{
		{Timestamp: 10.0, Device: "disk0", StartByte: 0, Length: 4096, Op: storage.Read},
		{Timestamp: 10.00005, Device: "disk0", StartByte: 8192, Length: 8192, Op: storage.Write},
		{Timestamp: 11.0, Device: "disk1", StartByte: 512, Length: 512, Op: storage.Read},
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := srt.WriteRecords(f, recs); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

func TestSRTConversion(t *testing.T) {
	dir := t.TempDir()
	in := writeSRT(t, dir)
	out := filepath.Join(dir, "out.replay")
	var buf bytes.Buffer
	if err := run([]string{"-in", in, "-out", out, "-srcdev", "disk0", "-outdev", "cello"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2 IOs") {
		t.Fatalf("output: %s", buf.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := blktrace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Device != "cello" || tr.NumIOs() != 2 {
		t.Fatalf("trace = %s, %d IOs", tr.Device, tr.NumIOs())
	}
}

func TestBinTextRoundTripViaCLI(t *testing.T) {
	dir := t.TempDir()
	in := writeSRT(t, dir)
	bin := filepath.Join(dir, "t.replay")
	txt := filepath.Join(dir, "t.txt")
	bin2 := filepath.Join(dir, "t2.replay")
	var buf bytes.Buffer
	if err := run([]string{"-in", in, "-out", bin}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", bin, "-out", txt, "-mode", "bin2text"}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", txt, "-out", bin2, "-mode", "text2bin"}, &buf); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(bin)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(bin2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("bin -> text -> bin round trip changed the file")
	}
}

func TestConvErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{}, &buf); err == nil {
		t.Fatal("missing flags accepted")
	}
	if err := run([]string{"-in", "nope.srt", "-out", "x"}, &buf); err == nil {
		t.Fatal("missing input accepted")
	}
	dir := t.TempDir()
	in := writeSRT(t, dir)
	if err := run([]string{"-in", in, "-out", filepath.Join(dir, "x"), "-mode", "magic"}, &buf); err == nil {
		t.Fatal("bad mode accepted")
	}
}
