// Command tracer-bench regenerates the paper's tables and figures on
// the simulated testbed and prints them in the layout the paper uses.
//
// Usage:
//
//	tracer-bench [-run all|fig7|fig8|fig9|fig10|fig11|fig12|tableIII|tableIV|tableV|ssd|ablations|sweep|workload|fleet|optimize|cache]
//	             [-duration D] [-outdir DIR] [-workers N] [-trace FILE.replay] [-telemetry-dir DIR]
//	tracer-bench -compare [-compare-tol 0.15]
//
// Independent simulation cells (one fresh engine + array per cell) fan
// out across -workers goroutines; results are deterministic at any
// worker count.  -workers 0 uses all cores, -workers 1 runs the old
// sequential path.
//
// With -outdir, each experiment also lands in its own .txt file so the
// run is diffable against EXPERIMENTS.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/blktrace"
	"repro/internal/experiments"
	"repro/internal/parsweep"
	"repro/internal/simtime"
	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracer-bench:", err)
		os.Exit(1)
	}
}

type experiment struct {
	name string
	fn   func(experiments.Config, io.Writer) error
}

// table of regenerators, one per paper artifact.
var table = []experiment{
	{"fig7", func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.Fig7(cfg, 6)
		if err != nil {
			return err
		}
		experiments.RenderFig7(w, r)
		return nil
	}},
	{"fig8", func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.Fig8(cfg)
		if err != nil {
			return err
		}
		experiments.RenderFig8(w, r)
		return nil
	}},
	{"fig9", func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.Fig9(cfg)
		if err != nil {
			return err
		}
		experiments.RenderFig9(w, r)
		return nil
	}},
	{"fig10", func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.Fig10(cfg)
		if err != nil {
			return err
		}
		experiments.RenderFig10(w, r)
		return nil
	}},
	{"fig11", func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.Fig11(cfg)
		if err != nil {
			return err
		}
		experiments.RenderFig11(w, r)
		return nil
	}},
	{"fig12", func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.Fig12(cfg)
		if err != nil {
			return err
		}
		experiments.RenderFig12(w, r)
		return nil
	}},
	{"tableIII", func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.TableIII(cfg)
		if err != nil {
			return err
		}
		experiments.RenderTableIII(w, r)
		return nil
	}},
	{"tableIV", func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.TableIV(cfg)
		if err != nil {
			return err
		}
		experiments.RenderAccuracyTable(w, r)
		return nil
	}},
	{"tableV", func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.TableV(cfg)
		if err != nil {
			return err
		}
		experiments.RenderAccuracyTable(w, r)
		return nil
	}},
	{"ssd", func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.SSDStudy(cfg)
		if err != nil {
			return err
		}
		experiments.RenderSSDStudy(w, r)
		return nil
	}},
	{"ablations", func(cfg experiments.Config, w io.Writer) error {
		fc, err := experiments.CompareFilters(cfg, 0.2)
		if err != nil {
			return err
		}
		experiments.RenderFilterComparison(w, fc)
		gs, err := experiments.GroupSizeSweep(cfg)
		if err != nil {
			return err
		}
		experiments.RenderGroupSizeSweep(w, gs)
		sc, err := experiments.CompareScaler(cfg, 0.5)
		if err != nil {
			return err
		}
		experiments.RenderScalerComparison(w, sc)
		wp, err := experiments.WritePathStudy(cfg)
		if err != nil {
			return err
		}
		experiments.RenderWritePathStudy(w, wp)
		return nil
	}},
	{"conserve", func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.ConservationStudy(cfg)
		if err != nil {
			return err
		}
		experiments.RenderConservationStudy(w, r)
		return nil
	}},
	{"thermal", func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.ThermalStudy(cfg)
		if err != nil {
			return err
		}
		experiments.RenderThermalStudy(w, r)
		return nil
	}},
	{"degraded", func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.DegradedStudy(cfg)
		if err != nil {
			return err
		}
		experiments.RenderDegradedStudy(w, r)
		return nil
	}},
	{"scheduler", func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.SchedulerStudy(cfg)
		if err != nil {
			return err
		}
		experiments.RenderSchedulerStudy(w, r)
		return nil
	}},
	{"eraid", func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.ERAIDStudy(cfg)
		if err != nil {
			return err
		}
		experiments.RenderERAIDStudy(w, r)
		return nil
	}},
	{"sweep", runSweep},
	{"kernel", benchKernel},
	{"workload", benchWorkload},
	{"fleet", benchFleet},
	{"optimize", benchOptimize},
	{"cache", benchCache},
}

// benchWorkload exercises the characterization pipeline: wall-clock
// analyze/synthesize throughput on a web-server-like trace, then the
// full perturbation study in the paper's LP/A table form.  The
// throughput lines are wall-clock measurements, so the experiment only
// runs on explicit request (like kernel).
func benchWorkload(cfg experiments.Config, w io.Writer) error {
	wp := synth.DefaultWebServer()
	wp.Seed = cfg.Seed
	wp.Duration = 10 * cfg.CollectDuration
	src := synth.WebServerTrace(wp)
	st := blktrace.ComputeStats(src)

	start := time.Now()
	profile, err := workload.Analyze(src, "web")
	if err != nil {
		return err
	}
	analyzeS := time.Since(start).Seconds()
	start = time.Now()
	if _, err := workload.Synthesize(profile, workload.SynthOptions{Seed: cfg.Seed, ReadRatio: -1}); err != nil {
		return err
	}
	synthS := time.Since(start).Seconds()
	fmt.Fprintf(w, "analyze    %d IOs in %.4fs (%.0f IOs/s)\n",
		st.IOs, analyzeS, float64(st.IOs)/math.Max(analyzeS, 1e-9))
	fmt.Fprintf(w, "synthesize %d IOs in %.4fs (%.0f IOs/s)\n",
		profile.IOs, synthS, float64(profile.IOs)/math.Max(synthS, 1e-9))

	res, err := experiments.WorkloadStudy(cfg)
	if err != nil {
		return err
	}
	experiments.RenderWorkloadStudy(w, res)
	return nil
}

// sweepTrace optionally replaces the synthetic mode grid with one
// trace file loaded from disk (-trace flag).
var sweepTrace string

// runSweep is the scaled 125-trace sweep of Section VI step 1: by
// default it samples a 3x3x3 mode grid at 4 load levels; -duration and
// editing the grid scale it up to the paper's full 1250 runs.  With
// -trace FILE the grid is replaced by that one .replay trace, measured
// at the same load levels.
//
// The sweep runs in two parallel phases: every mode's peak trace is
// collected first, then the whole (trace, load) grid is flattened into
// one cell list and fanned across the worker pool.  Output order is
// identical to the old nested sequential loops.
func runSweep(cfg experiments.Config, w io.Writer) error {
	if sweepTrace != "" {
		return runTraceSweep(cfg, sweepTrace, w)
	}
	sizes := []int64{4 << 10, 64 << 10, 1 << 20}
	ratios := []float64{0, 0.5, 1}
	loads := []float64{0.25, 0.5, 0.75, 1.0}
	var modes []synth.Mode
	for _, size := range sizes {
		for _, rd := range ratios {
			for _, rn := range ratios {
				modes = append(modes, synth.Mode{RequestBytes: size, ReadRatio: rd, RandomRatio: rn})
			}
		}
	}
	opts := parsweep.Options{Workers: cfg.Workers}
	opts.Label = func(i int) string { return fmt.Sprintf("collect %s", modes[i]) }
	traces, err := parsweep.Map(context.Background(), opts, len(modes),
		func(i int) (*blktrace.Trace, error) {
			return experiments.CollectModeTrace(cfg, experiments.HDDArray, modes[i])
		})
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}

	nLoads := len(loads)
	opts.Label = func(i int) string { return fmt.Sprintf("%s load %v", modes[i/nLoads], loads[i%nLoads]) }
	cells, err := parsweep.Map(context.Background(), opts, len(modes)*nLoads,
		func(i int) (*experiments.Measurement, error) {
			return experiments.MeasureAtLoad(cfg, experiments.HDDArray, traces[i/nLoads], loads[i%nLoads])
		})
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}

	fmt.Fprintln(w, "mode\tload%\tIOPS\tMBPS\twatts\tIOPS/W\tMBPS/kW")
	for i, m := range cells {
		fmt.Fprintf(w, "%s\t%.0f\t%.1f\t%.3f\t%.1f\t%.3f\t%.2f\n",
			modes[i/nLoads], m.Load*100, m.Result.IOPS, m.Result.MBPS, m.Power,
			m.Eff.IOPSPerWatt, m.Eff.MBPSPerKW)
	}
	fmt.Fprintf(w, "%d runs (paper's full grid: 125 modes x 10 loads = 1250)\n", len(cells))
	return nil
}

// telemetryDir optionally exports per-load telemetry artifact
// directories from the trace sweep (-telemetry-dir flag).
var telemetryDir string

// runTraceSweep measures one on-disk .replay trace at the sweep's load
// levels.  A truncated or corrupt file surfaces as a labelled error
// (non-zero exit), never a panic.  With -telemetry-dir every load level
// replays fully instrumented and lands in its own load<pct>/ subdir.
func runTraceSweep(cfg experiments.Config, path string, w io.Writer) error {
	tr, err := blktrace.ReadFile(path)
	if err != nil {
		return fmt.Errorf("sweep: load trace %s: %w", path, err)
	}
	loads := []float64{0.25, 0.5, 0.75, 1.0}
	opts := parsweep.Options{Workers: cfg.Workers}
	opts.Label = func(i int) string { return fmt.Sprintf("%s load %v", filepath.Base(path), loads[i]) }
	// Each cell owns its telemetry Set, so the fan-out stays race-free;
	// directories are written sequentially after the barrier.
	type sweepCell struct {
		m   *experiments.Measurement
		set *telemetry.Set
	}
	cells, err := parsweep.Map(context.Background(), opts, len(loads),
		func(i int) (sweepCell, error) {
			if telemetryDir == "" {
				m, err := experiments.MeasureAtLoad(cfg, experiments.HDDArray, tr, loads[i])
				return sweepCell{m: m}, err
			}
			set := telemetry.New(telemetry.Options{})
			run, err := experiments.MeasureAtLoadTelemetry(cfg, experiments.HDDArray, tr, loads[i], set)
			if err != nil {
				return sweepCell{}, err
			}
			return sweepCell{m: run.Meas, set: set}, nil
		})
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	fmt.Fprintln(w, "trace\tload%\tIOPS\tMBPS\twatts\tIOPS/W\tMBPS/kW")
	for _, c := range cells {
		m := c.m
		fmt.Fprintf(w, "%s\t%.0f\t%.1f\t%.3f\t%.1f\t%.3f\t%.2f\n",
			filepath.Base(path), m.Load*100, m.Result.IOPS, m.Result.MBPS, m.Power,
			m.Eff.IOPSPerWatt, m.Eff.MBPSPerKW)
	}
	for i, c := range cells {
		if c.set == nil {
			continue
		}
		dir := filepath.Join(telemetryDir, fmt.Sprintf("load%03.0f", loads[i]*100))
		if err := c.set.WriteDir(dir); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		fmt.Fprintf(w, "telemetry: %s\n", dir)
	}
	return nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracer-bench", flag.ContinueOnError)
	names := fs.String("run", "all", "comma-separated experiment names or 'all'")
	duration := fs.Duration("duration", 2*time.Second, "per-trace collection duration (virtual time)")
	outdir := fs.String("outdir", "", "also write one .txt per experiment into this directory")
	workers := fs.Int("workers", 0, "parallel simulation cells (0 = all cores, 1 = sequential)")
	list := fs.Bool("list", false, "list experiment names and exit")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile at exit to this file")
	benchout := fs.String("benchout", benchOut, "kernel experiment: JSON report path")
	replayBenchout := fs.String("replay-benchout", replayBenchOut, "kernel experiment: sharded replay JSON report path")
	fleetBenchout := fs.String("fleet-benchout", fleetBenchOut, "fleet experiment: JSON report path")
	optimizeBenchout := fs.String("optimize-benchout", optimizeBenchOut, "optimize experiment: JSON report path")
	cacheBenchout := fs.String("cache-benchout", cacheBenchOut, "cache experiment: JSON report path")
	compare := fs.Bool("compare", false, "re-run benchmark families with committed BENCH_*.json baselines and fail on throughput regression")
	compareTol := fs.Float64("compare-tol", defaultCompareTol, "fractional events/sec loss tolerated by -compare before failing")
	traceFile := fs.String("trace", "", "sweep experiment: replay this .replay trace instead of the synthetic grid")
	telDir := fs.String("telemetry-dir", "", "sweep experiment: export per-load telemetry artifacts under this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	benchOut = *benchout
	replayBenchOut = *replayBenchout
	fleetBenchOut = *fleetBenchout
	optimizeBenchOut = *optimizeBenchout
	cacheBenchOut = *cacheBenchout
	sweepTrace = *traceFile
	telemetryDir = *telDir
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tracer-bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "tracer-bench: memprofile:", err)
			}
		}()
	}
	if *list {
		for _, e := range table {
			fmt.Fprintln(out, e.name)
		}
		return nil
	}
	cfg := experiments.DefaultConfig()
	cfg.CollectDuration = simtime.FromStd(*duration)
	cfg.Workers = *workers

	if *compare {
		if *compareTol <= 0 || *compareTol >= 1 {
			return fmt.Errorf("bad -compare-tol %v (want a fraction in (0,1))", *compareTol)
		}
		return runCompare(cfg, *compareTol, out)
	}

	want := map[string]bool{}
	all := *names == "all"
	for _, n := range strings.Split(*names, ",") {
		want[strings.TrimSpace(n)] = true
	}
	ran := 0
	var failures []error
	var failedNames []string
	for _, e := range table {
		if !all && !want[e.name] {
			continue
		}
		// "sweep" is heavyweight; "kernel", "workload", "fleet",
		// "optimize" and "cache" print wall-clock measurements
		// (nondeterministic output): only on explicit request.
		if all && (e.name == "sweep" || e.name == "kernel" || e.name == "workload" || e.name == "fleet" || e.name == "optimize" || e.name == "cache") {
			continue
		}
		start := time.Now()
		var sink io.Writer = out
		var file *os.File
		if *outdir != "" {
			if err := os.MkdirAll(*outdir, 0o755); err != nil {
				return err
			}
			var err error
			file, err = os.Create(filepath.Join(*outdir, e.name+".txt"))
			if err != nil {
				return err
			}
			sink = io.MultiWriter(out, file)
		}
		fmt.Fprintf(out, "=== %s ===\n", e.name)
		ran++
		// A failing experiment no longer aborts the table: the rest
		// still regenerate, and the joined summary error below keeps
		// the exit non-zero (wrapping each cause for errors.Is).
		if err := e.fn(cfg, sink); err != nil {
			if file != nil {
				file.Close()
			}
			fmt.Fprintf(out, "FAIL %s: %v\n\n", e.name, err)
			failures = append(failures, fmt.Errorf("%s: %w", e.name, err))
			failedNames = append(failedNames, e.name)
			continue
		}
		if file != nil {
			if err := file.Close(); err != nil {
				return err
			}
		}
		fmt.Fprintf(out, "(%s in %.1fs)\n\n", e.name, time.Since(start).Seconds())
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q (use -list)", *names)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d of %d experiments failed (%s): %w",
			len(failures), ran, strings.Join(failedNames, ", "), errors.Join(failures...))
	}
	return nil
}
