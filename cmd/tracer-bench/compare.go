// Regression sentinel: -compare re-runs every benchmark family with a
// committed BENCH_*.json baseline in the working directory, redirecting
// the fresh reports to a temp dir, and diffs throughput row by row.  A
// report whose rows lose more than the tolerance (default 15%) of
// their committed events/sec on geometric mean fails the run — CI's
// guard against a silent performance regression riding in with a
// functional change.  The geomean, not any single row, is the gate:
// individual wall-clock rows on a shared single-CPU runner swing far
// more than 15% run to run, and a real regression in the code moves
// the whole family, not one lucky row.
//
// Only throughput gates.  Speedup columns (speedup_vs_1shard,
// speedup_vs_1worker) are never compared: they measure goroutine
// overlap, which the committed single-CPU baselines cannot exhibit, so
// gating on them would reward noise.  Wall-clock benchmarks are noisy
// in the other direction too — a row can only fail by regressing, never
// by being "too fast".
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/experiments"
)

// compareTol is the fractional events/sec loss a row may show before
// the sentinel fails; set by the -compare-tol flag.
const defaultCompareTol = 0.15

// benchKeys are the identifying (non-metric) fields a benchmark row is
// matched by across the committed and fresh reports, in key order.
var benchKeys = []string{"name", "source", "config", "tier", "shards", "arrays", "workers", "target_hit_rate"}

// benchThroughput lists the throughput fields gated, in preference
// order; the first one present and positive in both reports wins.
var benchThroughput = []string{"events_per_sec", "events_per_s", "ios_per_sec", "ios_per_s"}

// compareFamily binds one benchmark experiment to the committed
// baseline files it refreshes and the output-path variables that
// redirect the fresh reports.
type compareFamily struct {
	exp   string
	files []struct {
		committed string
		out       *string
	}
}

func compareFamilies() []compareFamily {
	return []compareFamily{
		{exp: "kernel", files: []struct {
			committed string
			out       *string
		}{{"BENCH_kernel.json", &benchOut}, {"BENCH_replay.json", &replayBenchOut}}},
		{exp: "fleet", files: []struct {
			committed string
			out       *string
		}{{"BENCH_fleet.json", &fleetBenchOut}}},
		{exp: "optimize", files: []struct {
			committed string
			out       *string
		}{{"BENCH_optimize.json", &optimizeBenchOut}}},
		{exp: "cache", files: []struct {
			committed string
			out       *string
		}{{"BENCH_cache.json", &cacheBenchOut}}},
	}
}

// runCompare is the -compare mode: re-run each family whose committed
// baseline exists, then gate fresh throughput against it.
func runCompare(cfg experiments.Config, tol float64, w io.Writer) error {
	fmt.Fprintf(w, "compare: GOMAXPROCS=%d, NumCPU=%d — wall-clock rows; speedup columns are not gated\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU())
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Fprintln(w, "compare: single-CPU host: multi-worker rows measure scheduling overhead, not parallel speedup")
	}
	tmp, err := os.MkdirTemp("", "tracer-bench-compare")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bench := map[string]func(experiments.Config, io.Writer) error{
		"kernel": benchKernel, "fleet": benchFleet, "optimize": benchOptimize, "cache": benchCache,
	}
	type pair struct{ name, committed, fresh string }
	var pairs []pair
	ranFamilies := 0
	for _, fam := range compareFamilies() {
		present := false
		for _, f := range fam.files {
			if _, err := os.Stat(f.committed); err == nil {
				present = true
			}
		}
		if !present {
			fmt.Fprintf(w, "compare: skipping %s (no committed baseline)\n", fam.exp)
			continue
		}
		for _, f := range fam.files {
			fresh := filepath.Join(tmp, filepath.Base(f.committed))
			*f.out = fresh
			pairs = append(pairs, pair{fam.exp, f.committed, fresh})
		}
		fmt.Fprintf(w, "=== compare: %s ===\n", fam.exp)
		if err := bench[fam.exp](cfg, w); err != nil {
			return fmt.Errorf("compare: %s: %w", fam.exp, err)
		}
		ranFamilies++
	}
	if ranFamilies == 0 {
		return fmt.Errorf("compare: no committed BENCH_*.json baselines in the working directory")
	}

	regressed, compared := 0, 0
	var failedFiles []string
	fmt.Fprintf(w, "\nfile\trow\tcommitted\tfresh\tdelta\n")
	for _, p := range pairs {
		if _, err := os.Stat(p.committed); err != nil {
			continue // family ran for its sibling file; nothing committed here
		}
		base, err := loadBenchRows(p.committed)
		if err != nil {
			return fmt.Errorf("compare: %w", err)
		}
		fresh, err := loadBenchRows(p.fresh)
		if err != nil {
			return fmt.Errorf("compare: %w", err)
		}
		keys := make([]string, 0, len(base))
		for k := range base {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		logSum := 0.0
		for _, k := range keys {
			bv := base[k]
			fv, ok := fresh[k]
			if !ok {
				return fmt.Errorf("compare: %s: row %q missing from the fresh run", p.committed, k)
			}
			compared++
			logSum += math.Log(fv / bv)
			fmt.Fprintf(w, "%s\t%s\t%.0f\t%.0f\t%+.1f%%\n", p.committed, k, bv, fv, (fv/bv-1)*100)
		}
		geo := math.Exp(logSum / float64(len(keys)))
		verdict := ""
		if geo < 1-tol {
			verdict = "\tREGRESSION"
			regressed++
			failedFiles = append(failedFiles, p.committed)
		}
		fmt.Fprintf(w, "%s\tgeomean over %d rows\t\t\t%+.1f%%%s\n", p.committed, len(keys), (geo-1)*100, verdict)
	}
	if compared == 0 {
		return fmt.Errorf("compare: no comparable rows between committed and fresh reports")
	}
	if regressed > 0 {
		return fmt.Errorf("compare: %d report(s) regressed more than %.0f%% events/sec on geomean vs the committed baseline (%s)",
			regressed, tol*100, strings.Join(failedFiles, ", "))
	}
	fmt.Fprintf(w, "compare: %d rows, every report geomean within %.0f%% of its committed baseline\n", compared, tol*100)
	return nil
}

// loadBenchRows flattens one BENCH_*.json into row-key -> throughput.
// The reports differ in shape (benchmarks vs rows arrays, per-family
// field names), so rows are matched generically: the key is built from
// whichever identifying fields the row carries, and the value is the
// first throughput field present.
func loadBenchRows(path string) (map[string]float64, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc map[string]any
	if err := json.Unmarshal(blob, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	for _, field := range []string{"benchmarks", "rows"} {
		arr, ok := doc[field].([]any)
		if !ok {
			continue
		}
		for i, el := range arr {
			row, ok := el.(map[string]any)
			if !ok {
				continue
			}
			key := benchRowKey(row)
			if key == "" {
				key = fmt.Sprintf("row%d", i)
			}
			val, ok := benchRowThroughput(row)
			if !ok {
				continue // grid/config rows without a throughput column
			}
			if _, dup := out[key]; dup {
				return nil, fmt.Errorf("%s: duplicate benchmark row key %q", path, key)
			}
			out[key] = val
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark rows with a throughput column", path)
	}
	return out, nil
}

func benchRowKey(row map[string]any) string {
	key := ""
	for _, k := range benchKeys {
		v, ok := row[k]
		if !ok {
			continue
		}
		if key != "" {
			key += "/"
		}
		switch t := v.(type) {
		case string:
			key += t
		case float64:
			key += fmt.Sprintf("%s=%g", k, t)
		default:
			key += fmt.Sprintf("%s=%v", k, t)
		}
	}
	return key
}

func benchRowThroughput(row map[string]any) (float64, bool) {
	for _, k := range benchThroughput {
		if v, ok := row[k].(float64); ok && v > 0 {
			return v, true
		}
	}
	return 0, false
}
