// Cache-tier benchmark: the "cache" experiment measures replay
// event throughput with the writeback cache on and off, across pinned
// hit-rate levels, and emits BENCH_cache.json so overhead regressions
// in the cache front end are diffable across commits.  Wall-clock
// output, so it only runs on explicit request (like kernel/workload).
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/blktrace"
	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/replay"
	"repro/internal/simtime"
	"repro/internal/storage"
)

// cacheBenchOut is where the "cache" experiment writes its JSON
// report; set by the -cache-benchout flag.
var cacheBenchOut = "BENCH_cache.json"

// cacheBenchIOs is the access count per measured replay.
const cacheBenchIOs = 20000

// cacheBenchRow is one measured configuration.
type cacheBenchRow struct {
	Config    string  `json:"config"`
	TargetHit float64 `json:"target_hit_rate"`
	HitRate   float64 `json:"hit_rate"`
	IOs       int64   `json:"ios"`
	Events    uint64  `json:"events"`
	Seconds   float64 `json:"seconds"`
	EventsPS  float64 `json:"events_per_s"`
	IOsPS     float64 `json:"ios_per_s"`
}

// cacheBenchReport is the top-level BENCH_cache.json document.
type cacheBenchReport struct {
	IOs  int     `json:"ios"`
	Tier string  `json:"tier"`
	MB   float64 `json:"capacity_mb"`
	Rows []cacheBenchRow `json:"rows"`
}

// cacheBenchTrace builds a deterministic 4 KiB read stream whose
// steady-state hit rate is pinned by construction: a round-robin hot
// set small enough to stay resident supplies the hits, and a monotone
// cold stream of never-reused extents supplies the misses.  target 0
// yields the all-miss stream; target h inserts one cold access every
// round(1/(1-h)) accesses.
func cacheBenchTrace(target float64) *blktrace.Trace {
	const extent = cache.DefaultExtentBytes
	const hotExtents = 32 // 2 MiB hot set, far under the 32 MiB tier
	missEvery := 1
	if target > 0 {
		missEvery = int(math.Round(1 / (1 - target)))
	}
	tr := &blktrace.Trace{Device: fmt.Sprintf("cache-bench-h%02.0f", target*100)}
	cold, hot := int64(0), int64(0)
	for i := 0; i < cacheBenchIOs; i++ {
		var sector int64
		if (i+1)%missEvery == 0 {
			// Cold extents start beyond the hot set and never repeat.
			sector = (hotExtents + cold) * extent / storage.SectorSize
			cold++
		} else {
			sector = (hot % hotExtents) * extent / storage.SectorSize
			hot++
		}
		tr.Bunches = append(tr.Bunches, blktrace.Bunch{
			Time:     simtime.Duration(i) * simtime.Millisecond,
			Packages: []blktrace.IOPackage{{Sector: sector, Size: 4 << 10, Op: storage.Read}},
		})
	}
	return tr
}

// benchCache replays each pinned-hit-rate stream through the bare HDD
// array and through the same array behind the 32 MiB DRAM tier,
// reporting simulation events/s and checking every measured hit rate
// lands on its target.
func benchCache(cfg experiments.Config, w io.Writer) error {
	spec := experiments.CacheSpec{Tier: cache.TierDRAM, CapacityMB: 32}
	report := cacheBenchReport{IOs: cacheBenchIOs, Tier: spec.Tier, MB: spec.CapacityMB}
	targets := []float64{0, 0.5, 0.95}

	fmt.Fprintln(w, "config\ttarget%\thit%\tevents\tseconds\tevents/s\tIOs/s")
	row := func(r cacheBenchRow) {
		report.Rows = append(report.Rows, r)
		fmt.Fprintf(w, "%s\t%.0f\t%.1f\t%d\t%.3f\t%.0f\t%.0f\n",
			r.Config, r.TargetHit*100, r.HitRate*100, r.Events, r.Seconds, r.EventsPS, r.IOsPS)
	}
	for _, target := range targets {
		tr := cacheBenchTrace(target)

		// Uncached baseline.
		engine, array, err := experiments.NewSystem(cfg, experiments.HDDArray)
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := replay.Replay(engine, array, tr, replay.Options{})
		if err != nil {
			return err
		}
		secs := time.Since(start).Seconds()
		row(cacheBenchRow{
			Config: "uncached", TargetHit: target,
			IOs: res.Completed, Events: engine.Fired(), Seconds: secs,
			EventsPS: float64(engine.Fired()) / secs,
			IOsPS:    float64(res.Completed) / secs,
		})

		// Cached run on a fresh system.
		engine, c, _, err := experiments.NewCachedSystem(cfg, experiments.HDDArray, spec)
		if err != nil {
			return err
		}
		start = time.Now()
		res, err = replay.Replay(engine, c, tr, replay.Options{})
		if err != nil {
			return err
		}
		secs = time.Since(start).Seconds()
		stats := c.Stats()
		r := cacheBenchRow{
			Config: spec.Label(), TargetHit: target, HitRate: stats.HitRate(),
			IOs: res.Completed, Events: engine.Fired(), Seconds: secs,
			EventsPS: float64(engine.Fired()) / secs,
			IOsPS:    float64(res.Completed) / secs,
		}
		// The pinned streams must land on their targets, or the bench is
		// not measuring what its config column claims.
		if math.Abs(r.HitRate-target) > 0.03 {
			return fmt.Errorf("cache bench: target hit rate %.0f%% measured %.1f%%", target*100, r.HitRate*100)
		}
		row(r)
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(cacheBenchOut, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "report written to %s\n", cacheBenchOut)
	return nil
}
