package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestLoadBenchRows pins the generic row matcher against the three
// report shapes -compare must read: kernel-style named rows (some with
// only an IOs/sec column), replay/fleet-style keyed rows, and
// cache-style "rows" arrays with per_s field names.
func TestLoadBenchRows(t *testing.T) {
	dir := t.TempDir()
	write := func(name, blob string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	kernel := write("kernel.json", `{"benchmarks":[
		{"name":"schedule-run/closure","events_per_sec":100},
		{"name":"end-to-end-replay","ios_per_sec":42}]}`)
	rows, err := loadBenchRows(kernel)
	if err != nil {
		t.Fatal(err)
	}
	if rows["schedule-run/closure"] != 100 || rows["end-to-end-replay"] != 42 {
		t.Fatalf("kernel rows = %v", rows)
	}

	replay := write("replay.json", `{"gomaxprocs":1,"benchmarks":[
		{"shards":1,"source":"buffered","events_per_sec":10,"speedup_vs_1shard":1},
		{"shards":2,"source":"buffered","events_per_sec":9,"speedup_vs_1shard":0.9},
		{"shards":1,"source":"mmap","events_per_sec":8,"speedup_vs_1shard":1}]}`)
	rows, err = loadBenchRows(replay)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows["buffered/shards=2"] != 9 || rows["mmap/shards=1"] != 8 {
		t.Fatalf("replay rows = %v", rows)
	}

	cache := write("cache.json", `{"tier":"dram","rows":[
		{"config":"uncached","target_hit_rate":0,"events_per_s":500},
		{"config":"uncached","target_hit_rate":0.5,"events_per_s":400}]}`)
	rows, err = loadBenchRows(cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows["uncached/target_hit_rate=0.5"] != 400 {
		t.Fatalf("cache rows = %v", rows)
	}

	// Grid rows without a throughput column are skipped, not zeroes.
	fleet := write("fleet.json", `{"grid":[{"arrays":64,"events_per_run":17553}],
		"benchmarks":[{"arrays":64,"workers":1,"events_per_sec":7}]}`)
	rows, err = loadBenchRows(fleet)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows["arrays=64/workers=1"] != 7 {
		t.Fatalf("fleet rows = %v", rows)
	}

	if _, err := loadBenchRows(write("empty.json", `{"benchmarks":[]}`)); err == nil {
		t.Fatal("empty report accepted")
	}
	if _, err := loadBenchRows(write("dup.json",
		`{"benchmarks":[{"name":"a","events_per_sec":1},{"name":"a","events_per_sec":2}]}`)); err == nil {
		t.Fatal("duplicate row keys accepted")
	}
}
