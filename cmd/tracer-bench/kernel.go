// Kernel micro-benchmarks: the "kernel" experiment measures the
// discrete-event engine itself (schedule+drain throughput and the
// end-to-end replay path) with the testing package's benchmark driver
// and emits the numbers as BENCH_kernel.json, so kernel regressions are
// diffable across commits the same way the paper tables are.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/blktrace"
	"repro/internal/experiments"
	"repro/internal/replay"
	"repro/internal/simtime"
	"repro/internal/synth"
)

// benchOut is where the "kernel" experiment writes its JSON report; set
// by the -benchout flag.
var benchOut = "BENCH_kernel.json"

// replayBenchOut is where the "kernel" experiment writes the sharded
// replay benchmark report; set by the -replay-benchout flag.
var replayBenchOut = "BENCH_replay.json"

// kernelEvents is the number of events scheduled per benchmark
// iteration, matching BenchmarkEngineScheduleRun in internal/simtime.
const kernelEvents = 1000

// kernelBench is one benchmark row of BENCH_kernel.json.
type kernelBench struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	IOsPerSec    float64 `json:"ios_per_sec,omitempty"`
}

// kernelReport is the top-level BENCH_kernel.json document.
type kernelReport struct {
	EventsPerOp int           `json:"events_per_op"`
	Benchmarks  []kernelBench `json:"benchmarks"`
}

func row(name string, r testing.BenchmarkResult, unitsPerOp int) kernelBench {
	ns := float64(r.NsPerOp())
	b := kernelBench{
		Name:        name,
		NsPerOp:     ns,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if ns > 0 {
		b.EventsPerSec = float64(unitsPerOp) / ns * 1e9
	}
	return b
}

// nopHandler is the closure-free no-op event target.
type nopHandler struct{}

func (nopHandler) OnEvent(*simtime.Engine, simtime.EventArg) {}

// benchDelta spreads event deadlines pseudo-randomly (but
// deterministically) so the heap actually reorders.
func benchDelta(j int) simtime.Duration {
	return simtime.Duration((j*7919)%104729 + 1)
}

// benchKernel runs the kernel benchmark suite, prints a summary table
// and writes BENCH_kernel.json next to the working directory (path from
// -benchout).
func benchKernel(cfg experiments.Config, w io.Writer) error {
	report := kernelReport{EventsPerOp: kernelEvents}

	base := simtime.NewBaselineEngine()
	report.Benchmarks = append(report.Benchmarks, row("schedule-run/baseline-container-heap", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			now := base.Now()
			for j := 0; j < kernelEvents; j++ {
				base.Schedule(now.Add(benchDelta(j)), func() {})
			}
			base.Run()
		}
	}), kernelEvents))

	closure := simtime.NewEngine()
	report.Benchmarks = append(report.Benchmarks, row("schedule-run/closure", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			now := closure.Now()
			for j := 0; j < kernelEvents; j++ {
				closure.Schedule(now.Add(benchDelta(j)), func() {})
			}
			closure.Run()
		}
	}), kernelEvents))

	free := simtime.NewEngine()
	report.Benchmarks = append(report.Benchmarks, row("schedule-run/closure-free", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			now := free.Now()
			for j := 0; j < kernelEvents; j++ {
				free.ScheduleEvent(now.Add(benchDelta(j)), nopHandler{}, simtime.EventArg{I64: int64(j)})
			}
			free.Run()
		}
	}), kernelEvents))

	wp := synth.DefaultWebServer()
	wp.Duration = 2 * simtime.Second
	trace := synth.WebServerTrace(wp)
	nIOs := trace.NumIOs()
	var replayErr error
	rr := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			engine, array, err := experiments.NewSystem(cfg, experiments.HDDArray)
			if err != nil {
				replayErr = err
				b.FailNow()
			}
			if _, err := replay.Replay(engine, array, trace, replay.Options{}); err != nil {
				replayErr = err
				b.FailNow()
			}
		}
	})
	if replayErr != nil {
		return fmt.Errorf("kernel: replay benchmark: %w", replayErr)
	}
	er := row("end-to-end-replay", rr, 0)
	if er.NsPerOp > 0 {
		er.IOsPerSec = float64(nIOs) / er.NsPerOp * 1e9
	}
	report.Benchmarks = append(report.Benchmarks, er)

	fmt.Fprintf(w, "benchmark\tns/op\tB/op\tallocs/op\tevents/sec\tIOs/sec\n")
	for _, b := range report.Benchmarks {
		fmt.Fprintf(w, "%s\t%.0f\t%d\t%d\t%.0f\t%.0f\n",
			b.Name, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp, b.EventsPerSec, b.IOsPerSec)
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(benchOut, blob, 0o644); err != nil {
		return fmt.Errorf("kernel: %w", err)
	}
	fmt.Fprintf(w, "wrote %s\n", benchOut)

	return benchShardedReplay(cfg, w)
}

// replayBench is one row of BENCH_replay.json.
type replayBench struct {
	Shards       int     `json:"shards"`
	Source       string  `json:"source"` // "buffered" or "mmap"
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
	IOsPerSec    float64 `json:"ios_per_sec"`
	// SpeedupVsOneShard is ns_per_op(1 shard, same source) / ns_per_op.
	SpeedupVsOneShard float64 `json:"speedup_vs_1shard"`
}

// replayReport is the top-level BENCH_replay.json document.  GOMAXPROCS
// and NumCPU record the execution environment: shard goroutines can
// only overlap when the host grants the process more than one CPU, so
// speedup numbers are meaningless without them.
type replayReport struct {
	GOMAXPROCS  int           `json:"gomaxprocs"`
	NumCPU      int           `json:"num_cpu"`
	TraceIOs    int           `json:"trace_ios"`
	DiskOps     int64         `json:"disk_ops_per_replay"`
	Benchmarks  []replayBench `json:"benchmarks"`
	Environment string        `json:"environment_note"`
}

// benchShardedReplay measures replay.ReplaySharded at several shard
// counts over the buffered and memory-mapped trace sources and writes
// BENCH_replay.json.
func benchShardedReplay(cfg experiments.Config, w io.Writer) error {
	warnSingleCPU(w)
	wp := synth.DefaultWebServer()
	wp.Duration = 2 * simtime.Second
	trace := synth.WebServerTrace(wp)

	dir, err := os.MkdirTemp("", "tracer-bench-rmap")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bench.rmap")
	if err := blktrace.WriteMappedFile(path, trace); err != nil {
		return err
	}
	mapped, err := blktrace.OpenMapped(path)
	if err != nil {
		return err
	}
	defer mapped.Close()

	// One warm-up run pins the per-replay disk-op count (every disk op
	// is one completion event on its shard's loop), so events/sec below
	// is events actually processed, not a guess.
	var diskOps int64
	{
		engines, array, err := experiments.NewSystemSharded(cfg, experiments.HDDArray, 1)
		if err != nil {
			return err
		}
		if _, err := replay.ReplaySharded(engines, array, trace, replay.ShardedOptions{}); err != nil {
			return err
		}
		s := array.Stats()
		diskOps = s.DiskReads + s.DiskWrites
	}

	report := replayReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		TraceIOs:   trace.NumIOs(),
		DiskOps:    diskOps,
		Environment: "speedup_vs_1shard reflects wall-clock on this host; shard goroutines " +
			"only run concurrently when GOMAXPROCS > 1",
	}
	baseNs := map[string]float64{}
	var benchErr error
	for _, src := range []struct {
		name string
		src  replay.BunchSource
	}{{"buffered", trace}, {"mmap", mapped}} {
		for _, shards := range []int{1, 2, 4, 8} {
			shards := shards
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					engines, array, err := experiments.NewSystemSharded(cfg, experiments.HDDArray, shards)
					if err != nil {
						benchErr = err
						b.FailNow()
					}
					if _, err := replay.ReplaySharded(engines, array, src.src, replay.ShardedOptions{}); err != nil {
						benchErr = err
						b.FailNow()
					}
				}
			})
			if benchErr != nil {
				return fmt.Errorf("kernel: sharded replay benchmark: %w", benchErr)
			}
			ns := float64(r.NsPerOp())
			row := replayBench{
				Shards:      shards,
				Source:      src.name,
				NsPerOp:     ns,
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			}
			if ns > 0 {
				row.EventsPerSec = float64(diskOps) / ns * 1e9
				row.IOsPerSec = float64(trace.NumIOs()) / ns * 1e9
			}
			if shards == 1 {
				baseNs[src.name] = ns
			}
			if base := baseNs[src.name]; base > 0 && ns > 0 {
				row.SpeedupVsOneShard = base / ns
			}
			report.Benchmarks = append(report.Benchmarks, row)
		}
	}

	fmt.Fprintf(w, "\nsharded replay (GOMAXPROCS=%d, %d disk ops/replay)\n", report.GOMAXPROCS, diskOps)
	fmt.Fprintf(w, "source\tshards\tns/op\tallocs/op\tevents/sec\tIOs/sec\tspeedup\n")
	for _, b := range report.Benchmarks {
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%d\t%.0f\t%.0f\t%.2fx\n",
			b.Source, b.Shards, b.NsPerOp, b.AllocsPerOp, b.EventsPerSec, b.IOsPerSec, b.SpeedupVsOneShard)
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(replayBenchOut, blob, 0o644); err != nil {
		return fmt.Errorf("kernel: %w", err)
	}
	fmt.Fprintf(w, "wrote %s\n", replayBenchOut)
	return nil
}
