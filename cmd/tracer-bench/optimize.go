// Policy-search benchmark: the "optimize" experiment measures the grid
// driver's evaluation-cell throughput across worker counts and emits
// BENCH_optimize.json, so fan-out regressions in the search harness are
// diffable across commits.  Wall-clock output, so it only runs on
// explicit request (like kernel/workload/fleet).
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/optimize"
	"repro/internal/simtime"
	"repro/internal/synth"
)

// optimizeBenchOut is where the "optimize" experiment writes its JSON
// report; set by the -optimize-benchout flag.
var optimizeBenchOut = "BENCH_optimize.json"

// optimizeBenchWorkers are the fan-out widths measured.
var optimizeBenchWorkers = []int{1, 2, 4, 8}

// optimizeBenchRow is one worker-count measurement.
type optimizeBenchRow struct {
	Workers    int     `json:"workers"`
	Cells      int     `json:"cells"`
	Seconds    float64 `json:"seconds"`
	CellsPerS  float64 `json:"cells_per_s"`
	SpeedupX   float64 `json:"speedup_x"`
	BestPoint  string  `json:"best_point"`
	BestEquals bool    `json:"best_equals_serial"`
}

// optimizeBenchReport is the top-level BENCH_optimize.json document.
type optimizeBenchReport struct {
	Policy string             `json:"policy"`
	Rows   []optimizeBenchRow `json:"rows"`
}

// benchOptimize sweeps the committed DRPM grid (12 cells) on a short
// idle-heavy trace at each worker count, reporting cells/s and checking
// every run elects the serial run's winner.
func benchOptimize(cfg experiments.Config, w io.Writer) error {
	wp := synth.DefaultWebServer()
	wp.Seed = cfg.Seed
	wp.Duration = 2 * simtime.Minute
	wp.MeanIOPS = 0.5
	wp.FootprintBytes = 4 << 20
	trace := synth.WebServerTrace(wp)

	space, err := optimize.DefaultSpace("drpm")
	if err != nil {
		return err
	}
	report := optimizeBenchReport{Policy: space.Policy}
	var serialBest string
	var serialS float64
	fmt.Fprintln(w, "workers\tcells\tseconds\tcells/s\tspeedup\twinner")
	for _, workers := range optimizeBenchWorkers {
		opts := optimize.Options{Config: cfg, Load: 0.25, Workers: workers}
		start := time.Now()
		res, err := optimize.Grid(context.Background(), space, trace, opts)
		if err != nil {
			return err
		}
		secs := time.Since(start).Seconds()
		best := res.Best.Point.String()
		if workers == optimizeBenchWorkers[0] {
			serialBest, serialS = best, secs
		}
		row := optimizeBenchRow{
			Workers:    workers,
			Cells:      res.Cells,
			Seconds:    secs,
			CellsPerS:  float64(res.Cells) / secs,
			SpeedupX:   serialS / secs,
			BestPoint:  best,
			BestEquals: best == serialBest,
		}
		if !row.BestEquals {
			return fmt.Errorf("optimize bench: workers %d elected %q, serial elected %q", workers, best, serialBest)
		}
		report.Rows = append(report.Rows, row)
		fmt.Fprintf(w, "%d\t%d\t%.3f\t%.1f\t%.2fx\t%s\n",
			row.Workers, row.Cells, row.Seconds, row.CellsPerS, row.SpeedupX, row.BestPoint)
	}

	f, err := os.Create(optimizeBenchOut)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "report written to %s\n", optimizeBenchOut)
	return nil
}
