package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/blktrace"
	"repro/internal/simtime"
	"repro/internal/storage"
)

func TestListExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "tableIII", "tableIV", "tableV", "ssd", "ablations", "conserve", "thermal", "degraded", "scheduler", "eraid", "sweep", "kernel", "fleet"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing experiment %s", want)
		}
	}
}

func TestRunSingleExperimentWithOutdir(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig7", "-outdir", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "disks dominate") {
		t.Fatalf("output: %s", buf.String())
	}
	blob, err := os.ReadFile(filepath.Join(dir, "fig7.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "Fig. 7") {
		t.Fatal("outdir file incomplete")
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig8,tableIII", "-duration", "1s"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== fig8 ===") || !strings.Contains(out, "=== tableIII ===") {
		t.Fatalf("output: %s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig99"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig8", "-duration", "1s", "-cpuprofile", cpu, "-memprofile", mem}, &buf); err != nil {
		t.Fatal(err)
	}
	// The memprofile defer fires on return, so both files exist here.
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestSweepTraceFlagReplaysFile drives the sweep experiment from an
// on-disk .replay trace instead of the synthetic grid.
func TestSweepTraceFlagReplaysFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.replay")
	b := blktrace.NewBuilder("tiny")
	for i := 0; i < 20; i++ {
		if err := b.Record(simtime.Duration(i)*50*simtime.Millisecond, blktrace.IOPackage{
			Sector: int64(i) * 128, Size: 16 << 10, Op: storage.Read}); err != nil {
			t.Fatal(err)
		}
	}
	if err := blktrace.WriteFile(path, b.Trace()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-run", "sweep", "-trace", path, "-workers", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "tiny.replay") || strings.Count(out, "\n") < 5 {
		t.Fatalf("sweep -trace output: %s", out)
	}
}

// TestSweepTraceFlagTruncated is the satellite regression: a .replay
// file cut mid-bunch must surface as a labelled error carrying
// blktrace.ErrBadFormat, never a panic.
func TestSweepTraceFlagTruncated(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-run", "sweep", "-trace", "../../internal/check/testdata/corrupt/truncated.replay"}, &buf)
	if err == nil {
		t.Fatal("sweep accepted a truncated trace")
	}
	if !errors.Is(err, blktrace.ErrBadFormat) {
		t.Fatalf("error does not wrap ErrBadFormat: %v", err)
	}
	if !strings.Contains(err.Error(), "truncated.replay") || !strings.Contains(err.Error(), "load trace") {
		t.Fatalf("error not labelled: %v", err)
	}
}

// TestFailingExperimentDoesNotAbortTable pins the partial-failure
// contract: an experiment that errors still lets the rest of the table
// run, and the summary error names it while keeping the exit non-zero.
func TestFailingExperimentDoesNotAbortTable(t *testing.T) {
	var buf bytes.Buffer
	// sweep fails (missing trace file); fig8 after it in the requested
	// set must still regenerate.
	err := run([]string{"-run", "sweep,fig8", "-duration", "1s", "-trace", "/nonexistent/nope.replay"}, &buf)
	if err == nil {
		t.Fatal("failing experiment did not fail the run")
	}
	if !strings.Contains(err.Error(), "1 of 2 experiments failed (sweep)") {
		t.Fatalf("summary error = %v", err)
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("summary error does not wrap the cause: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "FAIL sweep:") || !strings.Contains(out, "=== fig8 ===") {
		t.Fatalf("output: %s", out)
	}
	if !strings.Contains(out, "(fig8 in ") {
		t.Fatalf("fig8 did not complete after the sweep failure: %s", out)
	}
}

// TestSweepTelemetryDirExportsPerLoad drives -telemetry-dir: every
// load level of the trace sweep leaves its own artifact directory.
func TestSweepTelemetryDirExportsPerLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.replay")
	b := blktrace.NewBuilder("tiny")
	for i := 0; i < 20; i++ {
		if err := b.Record(simtime.Duration(i)*50*simtime.Millisecond, blktrace.IOPackage{
			Sector: int64(i) * 128, Size: 16 << 10, Op: storage.Read}); err != nil {
			t.Fatal(err)
		}
	}
	if err := blktrace.WriteFile(path, b.Trace()); err != nil {
		t.Fatal(err)
	}
	telDir := filepath.Join(dir, "telemetry")
	var buf bytes.Buffer
	if err := run([]string{"-run", "sweep", "-trace", path, "-telemetry-dir", telDir, "-workers", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"load025", "load050", "load075", "load100"} {
		for _, f := range []string{"summary.json", "series.csv", "trace.json", "power_wall.csv"} {
			if _, err := os.Stat(filepath.Join(telDir, sub, f)); err != nil {
				t.Fatalf("artifact %s/%s missing: %v", sub, f, err)
			}
		}
	}
	if strings.Count(buf.String(), "telemetry: ") != 4 {
		t.Fatalf("telemetry lines: %s", buf.String())
	}
}

// TestFleetExcludedFromAll: like kernel, the fleet benchmark prints
// wall-clock measurements and only runs on explicit request.
func TestFleetExcludedFromAll(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig8", "-duration", "1s"}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "=== fleet ===") {
		t.Fatal("fleet benchmark ran without explicit -run fleet")
	}
}

func TestOptimizeBenchSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_optimize.json")
	var buf bytes.Buffer
	if err := run([]string{"-run", "optimize", "-optimize-benchout", out}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "winner") {
		t.Fatalf("output: %s", buf.String())
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report optimizeBenchReport
	if err := json.Unmarshal(blob, &report); err != nil {
		t.Fatal(err)
	}
	if report.Policy != "drpm" || len(report.Rows) != len(optimizeBenchWorkers) {
		t.Fatalf("report: %+v", report)
	}
	for _, row := range report.Rows {
		if !row.BestEquals {
			t.Errorf("workers %d elected %q, differs from serial", row.Workers, row.BestPoint)
		}
	}
}
