package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "tableIII", "tableIV", "tableV", "ssd", "ablations", "conserve", "thermal", "degraded", "scheduler", "eraid", "sweep"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing experiment %s", want)
		}
	}
}

func TestRunSingleExperimentWithOutdir(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig7", "-outdir", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "disks dominate") {
		t.Fatalf("output: %s", buf.String())
	}
	blob, err := os.ReadFile(filepath.Join(dir, "fig7.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "Fig. 7") {
		t.Fatal("outdir file incomplete")
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig8,tableIII", "-duration", "1s"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== fig8 ===") || !strings.Contains(out, "=== tableIII ===") {
		t.Fatalf("output: %s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig99"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
