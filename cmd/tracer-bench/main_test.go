package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "tableIII", "tableIV", "tableV", "ssd", "ablations", "conserve", "thermal", "degraded", "scheduler", "eraid", "sweep", "kernel"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing experiment %s", want)
		}
	}
}

func TestRunSingleExperimentWithOutdir(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig7", "-outdir", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "disks dominate") {
		t.Fatalf("output: %s", buf.String())
	}
	blob, err := os.ReadFile(filepath.Join(dir, "fig7.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "Fig. 7") {
		t.Fatal("outdir file incomplete")
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig8,tableIII", "-duration", "1s"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== fig8 ===") || !strings.Contains(out, "=== tableIII ===") {
		t.Fatalf("output: %s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig99"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig8", "-duration", "1s", "-cpuprofile", cpu, "-memprofile", mem}, &buf); err != nil {
		t.Fatal(err)
	}
	// The memprofile defer fires on return, so both files exist here.
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}
