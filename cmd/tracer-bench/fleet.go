// Fleet benchmark: the "fleet" experiment measures the shared-clock
// fleet coordinator at several array and worker counts and writes
// BENCH_fleet.json, so coordinator scaling is diffable across commits
// the same way the kernel and sharded-replay numbers are.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/simtime"
)

// fleetBenchOut is where the "fleet" experiment writes its JSON report;
// set by the -fleet-benchout flag.
var fleetBenchOut = "BENCH_fleet.json"

// warnSingleCPU flags benchmark runs where worker goroutines cannot
// actually overlap, so speedup columns read as ~1.0x by construction.
func warnSingleCPU(w io.Writer) {
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Fprintln(w, "WARNING: GOMAXPROCS=1 — worker goroutines are serialized; speedup columns are meaningless on this host")
	}
}

// fleetBench is one row of BENCH_fleet.json.
type fleetBench struct {
	Arrays       int     `json:"arrays"`
	Workers      int     `json:"workers"`
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
	IOsPerSec    float64 `json:"ios_per_sec"`
	// SpeedupVs1Worker is ns_per_op(1 worker, same fleet size) / ns_per_op.
	SpeedupVs1Worker float64 `json:"speedup_vs_1worker"`
}

// fleetGridRow pins the deterministic per-size run shape measured in
// the warm-up pass: every worker count replays exactly these events.
type fleetGridRow struct {
	Arrays    int   `json:"arrays"`
	Events    int64 `json:"events_per_run"`
	Offered   int64 `json:"offered_per_run"`
	Completed int64 `json:"completed_per_run"`
}

// fleetReport is the top-level BENCH_fleet.json document.  GOMAXPROCS
// and NumCPU lead the document: fleet workers only overlap when the
// host grants the process more than one CPU, so the speedup column is
// uninterpretable without them.
type fleetReport struct {
	GOMAXPROCS  int            `json:"gomaxprocs"`
	NumCPU      int            `json:"num_cpu"`
	Grid        []fleetGridRow `json:"grid"`
	Benchmarks  []fleetBench   `json:"benchmarks"`
	Environment string         `json:"environment_note"`
}

// fleetBenchStream is the canonical open-loop stream for one fleet
// size: offered load scales with the fleet so per-array work stays
// constant across sizes.
func fleetBenchStream(cfg experiments.Config, arrays int) *fleet.SynthStream {
	dur := cfg.CollectDuration
	if dur <= 0 {
		dur = 2 * simtime.Second
	}
	return fleet.NewSynthStream(fleet.SynthParams{
		Duration:   dur,
		MeanIOPS:   64 * float64(arrays),
		Clients:    1024,
		Size:       16 << 10,
		ReadRatio:  0.6,
		WorkingSet: cfg.WorkingSet,
		Seed:       cfg.Seed,
	})
}

// benchFleet measures the fleet coordinator over an
// {arrays} x {workers} grid and writes BENCH_fleet.json (path from
// -fleet-benchout).
func benchFleet(cfg experiments.Config, w io.Writer) error {
	warnSingleCPU(w)
	report := fleetReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Environment: "speedup_vs_1worker reflects wall-clock on this host; fleet workers " +
			"only run concurrently when GOMAXPROCS > 1",
	}

	arrayGrid := []int{64, 256}
	workerGrid := []int{1, 2, 4, 8}

	// One warm-up run per fleet size pins the deterministic event and IO
	// counts (identical at every worker count), so events/sec below is
	// events actually fired, not a guess.
	perRun := map[int]fleetGridRow{}
	for _, arrays := range arrayGrid {
		f, err := fleet.New(cfg, experiments.HDDArray, arrays, 1)
		if err != nil {
			return fmt.Errorf("fleet: %w", err)
		}
		res, err := f.Run(fleetBenchStream(cfg, arrays), fleet.Options{})
		if err != nil {
			return fmt.Errorf("fleet: warm-up %d arrays: %w", arrays, err)
		}
		var events int64
		for _, e := range f.Engines() {
			events += int64(e.Fired())
		}
		row := fleetGridRow{Arrays: arrays, Events: events, Offered: res.Offered, Completed: res.Completed}
		perRun[arrays] = row
		report.Grid = append(report.Grid, row)
	}

	var benchErr error
	baseNs := map[int]float64{}
	for _, arrays := range arrayGrid {
		for _, workers := range workerGrid {
			arrays, workers := arrays, workers
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					f, err := fleet.New(cfg, experiments.HDDArray, arrays, workers)
					if err != nil {
						benchErr = err
						b.FailNow()
					}
					if _, err := f.Run(fleetBenchStream(cfg, arrays), fleet.Options{}); err != nil {
						benchErr = err
						b.FailNow()
					}
				}
			})
			if benchErr != nil {
				return fmt.Errorf("fleet: benchmark %d arrays / %d workers: %w", arrays, workers, benchErr)
			}
			ns := float64(r.NsPerOp())
			row := fleetBench{
				Arrays:      arrays,
				Workers:     workers,
				NsPerOp:     ns,
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			}
			if ns > 0 {
				row.EventsPerSec = float64(perRun[arrays].Events) / ns * 1e9
				row.IOsPerSec = float64(perRun[arrays].Completed) / ns * 1e9
			}
			if workers == 1 {
				baseNs[arrays] = ns
			}
			if base := baseNs[arrays]; base > 0 && ns > 0 {
				row.SpeedupVs1Worker = base / ns
			}
			report.Benchmarks = append(report.Benchmarks, row)
		}
	}

	fmt.Fprintf(w, "fleet coordinator (GOMAXPROCS=%d, NumCPU=%d)\n", report.GOMAXPROCS, report.NumCPU)
	fmt.Fprintf(w, "arrays\tworkers\tns/op\tallocs/op\tevents/sec\tIOs/sec\tspeedup\n")
	for _, b := range report.Benchmarks {
		fmt.Fprintf(w, "%d\t%d\t%.0f\t%d\t%.0f\t%.0f\t%.2fx\n",
			b.Arrays, b.Workers, b.NsPerOp, b.AllocsPerOp, b.EventsPerSec, b.IOsPerSec, b.SpeedupVs1Worker)
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(fleetBenchOut, blob, 0o644); err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	fmt.Fprintf(w, "wrote %s\n", fleetBenchOut)
	return nil
}
