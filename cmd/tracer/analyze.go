package main

import (
	"flag"
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"repro/internal/blktrace"
	"repro/internal/repository"
	"repro/internal/workload"
)

// cmdAnalyze characterizes a trace into a workload profile: interarrival
// burst/idle structure, request-size and bunch-size distributions,
// read/write mix, and spatial locality (seek distances, sequential runs,
// Zipf-fitted hot zones).  The JSON profile feeds tracegen -from-profile.
func cmdAnalyze(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	dir := fs.String("repo", "traces", "trace repository directory")
	name := fs.String("trace", "", "trace file name within the repository")
	in := fs.String("in", "", "analyze a trace file directly instead of a repository entry")
	outPath := fs.String("out", "", "profile JSON output file (default: stdout)")
	label := fs.String("name", "", "profile label (default: derived from the trace name)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*name == "") == (*in == "") {
		return fmt.Errorf("analyze: exactly one of -trace or -in is required")
	}
	var tr *blktrace.Trace
	var src string
	var err error
	if *in != "" {
		tr, err = blktrace.ReadFile(*in)
		src = *in
	} else {
		var repo *repository.Repository
		if repo, err = repository.Open(*dir); err == nil {
			tr, err = repo.Load(*name)
		}
		src = *name
	}
	if err != nil {
		return err
	}
	if *label == "" {
		*label = profileLabel(src)
	}
	profile, err := workload.Analyze(tr, *label)
	if err != nil {
		return err
	}
	if *outPath != "" {
		if err := workload.WriteProfile(*outPath, profile); err != nil {
			return err
		}
		fmt.Fprintf(out, "analyzed %s: %d bunches, %d IOs, read %.1f%%, seq %.1f%%, zipf theta %.2f -> %s\n",
			src, profile.Bunches, profile.IOs, profile.ReadRatio*100,
			profile.Spatial.SeqRatio*100, profile.Spatial.ZipfTheta, *outPath)
		return nil
	}
	return profile.Encode(out)
}

// profileLabel derives a short profile label from a trace file name or
// path: base name without the extension.
func profileLabel(src string) string {
	base := filepath.Base(src)
	for _, ext := range []string{repository.Ext, ".txt", ".trace"} {
		base = strings.TrimSuffix(base, ext)
	}
	if base == "" || base == "." {
		return "trace"
	}
	return base
}
