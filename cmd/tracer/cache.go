package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/blktrace"
	"repro/internal/cache"
	"repro/internal/check"
	"repro/internal/experiments"
	"repro/internal/simtime"
)

// defaultCacheFixture is the committed cache golden trace the study
// defaults to; when absent (running outside the repo) the identical
// trace is synthesised from its pinned seed.
const defaultCacheFixture = "internal/check/testdata/golden/cache/idle-web.trace.txt"

// cacheFlags groups the -cache-* replay flags so cmdReplay and
// cmdCacheStudy share one spec builder and one validation pass.
type cacheFlags struct {
	tier      *string
	mb        *float64
	extentKB  *int64
	ways      *int
	admit     *string
	evict     *string
	flush     *time.Duration
	idleDrain *time.Duration
	dirtyHigh *float64
}

// registerCacheFlags declares the -cache-* flag family on fs.
func registerCacheFlags(fs *flag.FlagSet) *cacheFlags {
	var cf cacheFlags
	cf.tier = fs.String("cache-tier", "", "cache tier in front of the array: dram or ssd (empty = uncached)")
	cf.mb = fs.Float64("cache-mb", 32, "cache capacity in MiB")
	cf.extentKB = fs.Int64("cache-extent-kb", 64, "cache line (extent) size in KiB")
	cf.ways = fs.Int("cache-ways", 8, "set associativity")
	cf.admit = fs.String("cache-admit", "always", "admission policy: always, zone or bypass-seq")
	cf.evict = fs.String("cache-evict", "lru", "eviction policy: lru, 2q or clock")
	cf.flush = fs.Duration("cache-flush", time.Second, "periodic dirty-flush interval in sim time (negative disables)")
	cf.idleDrain = fs.Duration("cache-idle-drain", 500*time.Millisecond, "idle threshold before draining dirty lines (negative disables)")
	cf.dirtyHigh = fs.Float64("cache-dirty-high", 0.5, "dirty line ratio that triggers threshold writeback")
	return &cf
}

// validate rejects -cache-* flags given without -cache-tier: a tuning
// knob that silently does nothing would hide an operator typo.
func (cf *cacheFlags) validate(cmd string, fs *flag.FlagSet) error {
	if *cf.tier != "" {
		return nil
	}
	var stray string
	fs.Visit(func(f *flag.Flag) {
		if stray == "" && strings.HasPrefix(f.Name, "cache-") && f.Name != "cache-tier" {
			stray = f.Name
		}
	})
	if stray != "" {
		return fmt.Errorf("%s: -%s requires -cache-tier (dram or ssd)", cmd, stray)
	}
	return nil
}

// spec converts the flags to the experiment-layer cache spec; tier and
// policy names are validated by cache.New with labelled errors.
func (cf *cacheFlags) spec() experiments.CacheSpec {
	return experiments.CacheSpec{
		Tier:           *cf.tier,
		CapacityMB:     *cf.mb,
		ExtentKB:       *cf.extentKB,
		Ways:           *cf.ways,
		Admission:      *cf.admit,
		Eviction:       *cf.evict,
		DirtyHighRatio: *cf.dirtyHigh,
		FlushInterval:  simtime.FromStd(*cf.flush),
		IdleDrain:      simtime.FromStd(*cf.idleDrain),
	}
}

// parseCacheSpecs decodes the -specs column list: "uncached" or
// "tier:MB[:evict[:admit]]" per comma-separated entry, e.g.
// "uncached,dram:32,dram:32:2q:bypass-seq,ssd:256".
func parseCacheSpecs(s string) ([]experiments.CacheSpec, error) {
	var specs []experiments.CacheSpec
	for _, col := range strings.Split(s, ",") {
		col = strings.TrimSpace(col)
		if col == "" {
			continue
		}
		if col == "uncached" || col == cache.TierNone {
			specs = append(specs, experiments.CacheSpec{})
			continue
		}
		parts := strings.Split(col, ":")
		if len(parts) < 2 || len(parts) > 4 {
			return nil, fmt.Errorf("cachestudy: bad spec %q (want tier:MB[:evict[:admit]] or uncached)", col)
		}
		mb, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || mb <= 0 {
			return nil, fmt.Errorf("cachestudy: bad capacity %q in spec %q", parts[1], col)
		}
		spec := experiments.CacheSpec{Tier: parts[0], CapacityMB: mb}
		if len(parts) > 2 {
			spec.Eviction = parts[2]
		}
		if len(parts) > 3 {
			spec.Admission = parts[3]
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("cachestudy: no cache specs given")
	}
	return specs, nil
}

// cmdCacheStudy sweeps cache configurations against load levels and
// prints the hit-rate / IOPS / Watt Pareto table — which tier (if any)
// earns its static power draw on this workload, and at what capacity.
func cmdCacheStudy(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cachestudy", flag.ContinueOnError)
	repoDir := fs.String("repo", "traces", "trace repository directory")
	name := fs.String("trace", "", "trace file name within the repository")
	in := fs.String("in", "", "trace file to study (default: committed cache golden fixture)")
	device := fs.String("device", "hdd", "backing array kind: hdd or ssd")
	loadsStr := fs.String("loads", "50,100", "comma-separated load percentages")
	specsStr := fs.String("specs", "", "cache columns 'tier:MB[:evict[:admit]]' or 'uncached' (default: uncached,dram:32,ssd:256)")
	seed := fs.Uint64("seed", 1, "simulation seed (drives power metering)")
	workers := fs.Int("workers", 0, "parallel study cells (0 = all cores, 1 = sequential)")
	jsonPath := fs.String("json", "", "also write the study rows as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	kind, err := experiments.KindFromString(*device)
	if err != nil {
		return err
	}
	loads, err := parseLoads(*loadsStr)
	if err != nil {
		return err
	}
	specs := []experiments.CacheSpec(nil)
	if *specsStr != "" {
		if specs, err = parseCacheSpecs(*specsStr); err != nil {
			return err
		}
	}
	trace, err := loadCacheTrace(*repoDir, *name, *in)
	if err != nil {
		return err
	}
	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	cfg.Loads = loads
	cfg.Workers = *workers
	rows, err := experiments.CacheStudy(cfg, kind, trace, specs)
	if err != nil {
		return err
	}
	fmt.Fprint(out, experiments.RenderCacheStudy(rows))
	if *jsonPath != "" {
		blob, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nstudy rows written to %s\n", *jsonPath)
	}
	return nil
}

// loadCacheTrace resolves the cachestudy trace like loadOptimizeTrace,
// defaulting to the committed cache fixture.
func loadCacheTrace(repoDir, name, in string) (*blktrace.Trace, error) {
	if in == "" && name == "" {
		if _, err := os.Stat(defaultCacheFixture); err == nil {
			return check.LoadFixtureTrace(defaultCacheFixture)
		}
		return check.CacheFixtureTrace(), nil
	}
	return loadOptimizeTrace(repoDir, name, in)
}
