package main

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/repository"
	"repro/internal/simtime"
	"repro/internal/slo"
	"repro/internal/telemetry"
)

// cmdFleet simulates a fleet of independent arrays behind a front-end
// router: a synthesized (or replayed) client stream is admitted through
// an optional token bucket, placed onto arrays by the chosen policy,
// and each array advances on its own event loop under the shared-clock
// coordinator.  Results are byte-identical at any -workers count.
func cmdFleet(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fleet", flag.ContinueOnError)
	arrays := fs.Int("arrays", 16, "number of arrays in the fleet")
	workers := fs.Int("workers", 0, "worker goroutines (0 = all cores)")
	policyName := fs.String("policy", "round-robin", "placement policy: round-robin, least-loaded, weighted or affinity")
	device := fs.String("device", "hdd", "array kind: hdd or ssd")
	duration := fs.Duration("duration", 1_000_000_000, "synthetic stream duration (sim time)")
	iops := fs.Float64("iops", 0, "offered fleet-wide IOPS (0 = 64 per array)")
	size := fs.Int64("size", 16<<10, "request size in bytes")
	read := fs.Float64("read", 0.6, "read ratio [0,1]")
	clients := fs.Int("clients", 1024, "distinct client IDs in the synthetic stream")
	window := fs.Duration("window", 10_000_000, "router decision window (sim time)")
	admitRate := fs.Float64("admit-rate", 0, "token-bucket admission rate in IOPS (0 = no admission control)")
	admitBurst := fs.Float64("admit-burst", 0, "token-bucket burst (0 = one second at -admit-rate)")
	powerCap := fs.Float64("power-cap", 0, "fleet power cap in watts for headroom reporting (0 = none)")
	seed := fs.Uint64("seed", 1, "fleet seed (streams and arrays derive from it)")
	dir := fs.String("repo", "traces", "trace repository directory (with -trace)")
	name := fs.String("trace", "", "replay this repository trace instead of synthesizing a stream")
	telemetryDir := fs.String("telemetry-dir", "", "write telemetry artifacts here (empty disables)")
	sloPath := fs.String("slo", "", "SLO spec JSON to evaluate burn-rate alerts against (\"example\" for the built-in spec)")
	fail := fs.String("fail", "", "inject disk failures: ARRAY@TIME[:DISK],... (e.g. 12@30s); each triggers a background rebuild")
	mtbf := fs.Duration("mtbf", 0, "draw a seeded failure scenario with this mean time between array failures (instead of -fail)")
	watch := fs.Bool("watch", false, "live-refresh the SLO budget table while the run progresses (requires -slo)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *arrays < 1 {
		return fmt.Errorf("fleet: bad array count %d", *arrays)
	}
	if *workers < 0 {
		return fmt.Errorf("fleet: bad worker count %d", *workers)
	}
	if *admitRate < 0 {
		return fmt.Errorf("fleet: bad admission rate %v (want IOPS >= 0)", *admitRate)
	}
	if *admitBurst != 0 && *admitRate == 0 {
		return fmt.Errorf("fleet: -admit-burst requires -admit-rate")
	}
	if *powerCap < 0 {
		return fmt.Errorf("fleet: bad power cap %v W", *powerCap)
	}
	if *watch && *sloPath == "" {
		return fmt.Errorf("fleet: -watch needs an SLO spec to watch (-slo)")
	}
	if *fail != "" && *mtbf != 0 {
		return fmt.Errorf("fleet: -fail and -mtbf are mutually exclusive")
	}
	if *mtbf < 0 {
		return fmt.Errorf("fleet: bad MTBF %v", *mtbf)
	}
	if *name != "" {
		// Synthesis knobs are dead weight under -trace; a silently
		// ignored flag would hide an operator mistake.
		synthOnly := map[string]bool{"duration": true, "iops": true, "size": true, "read": true, "clients": true}
		var stray string
		fs.Visit(func(f *flag.Flag) {
			if stray == "" && synthOnly[f.Name] {
				stray = f.Name
			}
		})
		if stray != "" {
			return fmt.Errorf("fleet: -%s only applies to the synthetic stream and conflicts with -trace", stray)
		}
	} else {
		if *read < 0 || *read > 1 {
			return fmt.Errorf("fleet: bad read ratio %v (want [0,1])", *read)
		}
		if *size <= 0 {
			return fmt.Errorf("fleet: bad request size %d", *size)
		}
		if *clients < 1 {
			return fmt.Errorf("fleet: bad client count %d", *clients)
		}
	}
	kind, err := experiments.KindFromString(*device)
	if err != nil {
		return err
	}
	pol, err := fleet.PolicyFromString(*policyName)
	if err != nil {
		return err
	}
	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	f, err := fleet.New(cfg, kind, *arrays, *workers)
	if err != nil {
		return err
	}

	var stream fleet.Stream
	if *name != "" {
		repo, err := repository.Open(*dir)
		if err != nil {
			return err
		}
		tr, err := repo.Load(*name)
		if err != nil {
			return err
		}
		stream = fleet.NewTraceStream(tr)
	} else {
		rate := *iops
		if rate <= 0 {
			rate = 64 * float64(*arrays)
		}
		stream = fleet.NewSynthStream(fleet.SynthParams{
			Duration:   simtime.FromStd(*duration),
			MeanIOPS:   rate,
			Clients:    *clients,
			Size:       *size,
			ReadRatio:  *read,
			WorkingSet: cfg.WorkingSet,
			Seed:       *seed,
		})
	}

	var set *telemetry.Set
	if *telemetryDir != "" {
		set = telemetry.New(telemetry.Options{})
	}
	var bucket *fleet.TokenBucket
	if *admitRate > 0 {
		bucket = fleet.NewTokenBucket(*admitRate, *admitBurst)
	}
	var sloEng *slo.Engine
	if *sloPath != "" {
		spec, err := slo.LoadSpec(*sloPath)
		if err != nil {
			return err
		}
		if sloEng, err = slo.NewEngine(spec); err != nil {
			return err
		}
	}
	var faults []fleet.Fault
	if *fail != "" {
		if faults, err = fleet.ParseFaults(*fail); err != nil {
			return err
		}
	} else if *mtbf > 0 {
		horizon := simtime.FromStd(*duration)
		if d, ok := stream.(interface{ Duration() simtime.Duration }); ok {
			horizon = d.Duration()
		}
		disks := cfg.HDDs
		if kind == experiments.SSDArray {
			disks = cfg.SSDs
		}
		faults = fleet.FaultsFromMTBF(*arrays, disks, simtime.FromStd(*mtbf), horizon, *seed)
		fmt.Fprintf(out, "mtbf %v over %v: %d failure(s) drawn\n", *mtbf, horizon, len(faults))
	}
	var watcher *sloWatcher
	var onBarrier func(simtime.Time)
	if *watch {
		watcher = newSLOWatcher(out, sloEng)
		onBarrier = watcher.OnBarrier
	}
	res, err := f.Run(stream, fleet.Options{
		Policy:    pol,
		Admission: bucket,
		Window:    simtime.FromStd(*window),
		Telemetry: set,
		PowerCapW: *powerCap,
		SLO:       sloEng,
		Faults:    faults,
		OnBarrier: onBarrier,
	})
	if err != nil {
		return err
	}
	if watcher != nil {
		watcher.Final()
	}
	if set != nil {
		if err := set.WriteDir(*telemetryDir); err != nil {
			return err
		}
	}

	fmt.Fprintf(out, "fleet: %d %s arrays, %d workers, policy %s, %d windows\n",
		res.Arrays, kind, res.Workers, res.Policy, res.Windows)
	fmt.Fprintf(out, "offered %d, admitted %d, rejected %d (%.2f%%), completed %d\n",
		res.Offered, res.Admitted, res.Rejected, res.RejectRate*100, res.Completed)
	fmt.Fprintf(out, "throughput: %.1f IOPS, %.3f MBPS\n", res.IOPS, res.MBPS)
	fmt.Fprintf(out, "response ms: mean %.2f, p50 %.2f, p99 %.2f, p999 %.2f, max %.2f\n",
		res.MeanResponse.Seconds()*1000, res.P50Response.Seconds()*1000,
		res.P99Response.Seconds()*1000, res.P999Response.Seconds()*1000,
		res.MaxResponse.Seconds()*1000)
	fmt.Fprintf(out, "power: %.1f W mean, %.1f J, %.3f IOPS/W, %.2f MBPS/kW\n",
		res.MeanWatts, res.EnergyJ, res.IOPSPerWatt, res.MBPSPerKW)
	if res.PowerCapW > 0 {
		fmt.Fprintf(out, "power cap %.1f W: headroom %.1f W\n", res.PowerCapW, res.HeadroomW)
	}
	for _, cl := range res.PerClass {
		fmt.Fprintf(out, "class %s: %d done, response ms p50 %.2f, p99 %.2f, p999 %.2f, max %.2f\n",
			cl.Class, cl.Completed, cl.P50Response.Seconds()*1000, cl.P99Response.Seconds()*1000,
			cl.P999Response.Seconds()*1000, cl.MaxResponse.Seconds()*1000)
	}
	for _, ft := range res.Faults {
		switch {
		case ft.Error != "":
			fmt.Fprintf(out, "fault array %d disk %d: %s\n", ft.Array, ft.Disk, ft.Error)
		case ft.RecoveredAt > 0:
			fmt.Fprintf(out, "fault array %d disk %d: failed %s, rebuilt by %s\n",
				ft.Array, ft.Disk, formatSim(ft.FailedAt), formatSim(ft.RecoveredAt))
		default:
			fmt.Fprintf(out, "fault array %d disk %d: failed %s, still rebuilding at run end\n",
				ft.Array, ft.Disk, formatSim(ft.FailedAt))
		}
	}
	if sloEng != nil && watcher == nil {
		st := sloEng.Snapshot()
		fmt.Fprintf(out, "slo %s: %d alert(s), %d firing at end\n", st.Spec, st.Alerts, st.Firing)
	}
	if set != nil {
		fmt.Fprintf(out, "telemetry written to %s (render with: tracer report -dir %s)\n",
			*telemetryDir, *telemetryDir)
	}
	return nil
}
