package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"

	"repro/internal/blktrace"
	"repro/internal/experiments"
	"repro/internal/replay"
	"repro/internal/repository"
	"repro/internal/simtime"
	"repro/internal/slo"
	"repro/internal/telemetry"
)

// cmdReplay runs one fully instrumented replay: the trace is filtered
// to the requested load, replayed on a fresh array with every telemetry
// producer wired (replay probe, per-disk spans, power channel, kernel
// gauges), and the artifact directory is exported — summary.json,
// series.csv, events.jsonl, power_wall.csv and a Chrome trace that
// opens in Perfetto.  `tracer report -dir DIR` renders the result.
//
// -replay-shards N > 1 runs the sharded executor (one event loop per
// shard, member disks striped across shards); results are bit-identical
// to the serial run at any shard count.  -mmap loads -in as a
// memory-mapped ".rmap" trace (see traceconv -mode bin2map) and replays
// it zero-copy; a load below 100% still materializes, since filtering
// rewrites the bunch list.
//
// -cache-tier interposes a writeback cache (see internal/cache) between
// the replay and the array; the remaining -cache-* flags tune it and
// are rejected without a tier, so a typo cannot silently replay
// uncached.  The cache front end is serial-engine only: it composes
// with neither -replay-shards above 1 nor -mmap.
func cmdReplay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	dir := fs.String("repo", "traces", "trace repository directory")
	name := fs.String("trace", "", "trace file name within the repository")
	in := fs.String("in", "", "replay a trace file directly instead of a repository entry")
	device := fs.String("device", "hdd", "array kind: hdd or ssd")
	load := fs.Float64("load", 100, "load percentage")
	telemetryDir := fs.String("telemetry-dir", "telemetry", "artifact output directory")
	cadence := fs.Duration("cadence", 1_000_000_000, "time-series sampling cadence (sim time)")
	shards := fs.Int("replay-shards", 1, "event-loop shards for the replay (1 = serial engine)")
	mmap := fs.Bool("mmap", false, "load -in as a memory-mapped .rmap trace (zero-copy)")
	cf := registerCacheFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*name == "") == (*in == "") {
		return fmt.Errorf("replay: exactly one of -trace or -in is required")
	}
	if *load <= 0 || *load > 1000 {
		return fmt.Errorf("replay: bad load percentage %v", *load)
	}
	if *shards < 1 {
		return fmt.Errorf("replay: bad shard count %d", *shards)
	}
	if *mmap && *in == "" {
		return fmt.Errorf("replay: -mmap requires -in (repository entries are not .rmap files)")
	}
	if err := cf.validate("replay", fs); err != nil {
		return err
	}
	if *cf.tier != "" && *shards > 1 {
		return fmt.Errorf("replay: -cache-tier does not compose with -replay-shards %d (the cache tier is serial-engine only)", *shards)
	}
	if *cf.tier != "" && *mmap {
		return fmt.Errorf("replay: -cache-tier does not compose with -mmap")
	}
	kind, err := experiments.KindFromString(*device)
	if err != nil {
		return err
	}
	var src replay.BunchSource
	if *mmap {
		m, err := blktrace.OpenMapped(*in)
		if err != nil {
			return err
		}
		defer m.Close()
		src = m
	} else {
		var tr *blktrace.Trace
		if *in != "" {
			tr, err = blktrace.ReadFile(*in)
		} else {
			var repo *repository.Repository
			if repo, err = repository.Open(*dir); err == nil {
				tr, err = repo.Load(*name)
			}
		}
		if err != nil {
			return err
		}
		src = tr
	}
	set := telemetry.New(telemetry.Options{Cadence: simtime.FromStd(*cadence)})
	if *cf.tier != "" {
		m, err := experiments.MeasureCachedAtLoadTelemetry(experiments.DefaultConfig(), kind, cf.spec(), src.(*blktrace.Trace), *load/100, set)
		if err != nil {
			return err
		}
		if err := set.WriteDir(*telemetryDir); err != nil {
			return err
		}
		r := m.Result
		fmt.Fprintf(out, "replayed %d IOs at load %.0f%% on %s behind %s: %.1f IOPS, %.3f MBPS, %.1f W\n",
			r.Completed, *load, kind, m.Spec, r.IOPS, r.MBPS, m.Power)
		fmt.Fprintf(out, "cache: %.1f%% hit (%d/%d), %d writebacks (%.1f KiB), %d evictions\n",
			m.Cache.HitRate()*100, m.Cache.Hits, m.Cache.Hits+m.Cache.Misses,
			m.Cache.Writebacks, float64(m.Cache.WritebackBytes)/1024, m.Cache.Evictions)
		fmt.Fprintf(out, "telemetry written to %s (render with: tracer report -dir %s)\n",
			*telemetryDir, *telemetryDir)
		return nil
	}
	var run *experiments.TelemetryRun
	if *shards > 1 || *mmap {
		run, err = experiments.MeasureAtLoadTelemetrySharded(experiments.DefaultConfig(), kind, src, *load/100, set, *shards)
	} else {
		run, err = experiments.MeasureAtLoadTelemetry(experiments.DefaultConfig(), kind, src.(*blktrace.Trace), *load/100, set)
	}
	if err != nil {
		return err
	}
	if err := set.WriteDir(*telemetryDir); err != nil {
		return err
	}
	r := run.Meas.Result
	fmt.Fprintf(out, "replayed %d IOs at load %.0f%% on %s (%d shard(s)%s): %.1f IOPS, %.3f MBPS, %.1f W\n",
		r.Completed, *load, kind, *shards, map[bool]string{true: ", mmap"}[*mmap], r.IOPS, r.MBPS, run.Meas.Power)
	fmt.Fprintf(out, "telemetry written to %s (render with: tracer report -dir %s)\n",
		*telemetryDir, *telemetryDir)
	return nil
}

// cmdReport renders a telemetry artifact directory as text tables:
// metric totals with per-window mean/max, histogram quantiles,
// per-channel power digests — and, when the run carried an SLO engine,
// the burn-rate alert stream from alerts.jsonl.  -alert SEQ drills
// into one alert's full record.
func cmdReport(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	dir := fs.String("dir", "telemetry", "telemetry artifact directory")
	alertSeq := fs.Int("alert", 0, "drill into the alert with this sequence number (requires alerts.jsonl)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	blob, alertsErr := os.ReadFile(filepath.Join(*dir, slo.AlertsFile))
	if *alertSeq > 0 {
		if alertsErr != nil {
			return fmt.Errorf("report: -alert: %w", alertsErr)
		}
		return renderAlertDetail(out, blob, *alertSeq)
	}
	if err := telemetry.RenderReport(out, *dir); err != nil {
		return err
	}
	if alertsErr == nil {
		if err := renderAlerts(out, blob); err != nil {
			return err
		}
	}
	return nil
}

// renderAlerts prints the alert stream as a table.
func renderAlerts(out io.Writer, blob []byte) error {
	alerts, err := slo.ReadAlerts(blob)
	if err != nil {
		return err
	}
	if len(alerts) == 0 {
		fmt.Fprintln(out, "\nno burn-rate alerts fired")
		return nil
	}
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\nSEQ\tAT\tEVENT\tCLASS\tOBJECTIVE\tFAST\tSLOW\tBUDGET\tTOP ARRAYS")
	for _, a := range alerts {
		var tops []string
		for _, t := range a.TopArrays {
			tops = append(tops, fmt.Sprintf("%d(%d)", t.Array, t.Bad))
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%.2f\t%.2f\t%.0f%%\t%s\n",
			a.Seq, formatSim(a.At), a.Event, a.Class, a.Objective,
			a.FastBurn, a.SlowBurn, a.BudgetRemaining*100, strings.Join(tops, " "))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(out, "drill down with: tracer report -dir DIR -alert SEQ")
	return nil
}

// renderAlertDetail dumps one alert's full record as indented JSON.
func renderAlertDetail(out io.Writer, blob []byte, seq int) error {
	alerts, err := slo.ReadAlerts(blob)
	if err != nil {
		return err
	}
	for _, a := range alerts {
		if a.Seq != seq {
			continue
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(a)
	}
	return fmt.Errorf("report: no alert with seq %d (stream has %d)", seq, len(alerts))
}
