package main

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"repro/internal/blktrace"
	"repro/internal/repository"
	"repro/internal/simtime"
	"repro/internal/storage"
)

// Trace-manipulation subcommands: slice, merge, remap, dump.  They
// wrap internal/blktrace's utilities so operators can prepare replay
// inputs (cut a window out of a long trace, merge per-device streams,
// retarget capacities) without writing Go.

// storeAs writes a trace into the repository under a real-trace label.
func storeAs(repo *repository.Repository, device, label string, t *blktrace.Trace) (string, error) {
	e, err := repo.StoreReal(device, label, t)
	if err != nil {
		return "", err
	}
	parts := strings.Split(e.Path, "/")
	return parts[len(parts)-1], nil
}

// cmdSlice cuts a time window out of a trace.
func cmdSlice(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("slice", flag.ContinueOnError)
	dir := fs.String("repo", "traces", "trace repository directory")
	name := fs.String("trace", "", "input trace name")
	from := fs.Duration("from", 0, "window start (virtual time)")
	to := fs.Duration("to", 0, "window end (virtual time, required)")
	label := fs.String("label", "", "output label (default <input>-slice)")
	device := fs.String("device", "raid5-hdd", "device label for the output name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" || *to == 0 {
		return fmt.Errorf("slice: -trace and -to are required")
	}
	repo, err := repository.Open(*dir)
	if err != nil {
		return err
	}
	tr, err := repo.Load(*name)
	if err != nil {
		return err
	}
	got, err := blktrace.Slice(tr, simtime.FromStd(*from), simtime.FromStd(*to))
	if err != nil {
		return err
	}
	lbl := *label
	if lbl == "" {
		lbl = strings.TrimSuffix(*name, repository.Ext) + "-slice"
	}
	stored, err := storeAs(repo, *device, lbl, got)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "sliced %s [%v, %v) -> %s: %d IOs\n", *name, *from, *to, stored, got.NumIOs())
	return nil
}

// cmdMerge interleaves several repository traces.
func cmdMerge(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("merge", flag.ContinueOnError)
	dir := fs.String("repo", "traces", "trace repository directory")
	names := fs.String("traces", "", "comma-separated input trace names")
	label := fs.String("label", "merged", "output label")
	device := fs.String("device", "raid5-hdd", "device label for the output name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repo, err := repository.Open(*dir)
	if err != nil {
		return err
	}
	var inputs []*blktrace.Trace
	for _, n := range strings.Split(*names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		tr, err := repo.Load(n)
		if err != nil {
			return err
		}
		inputs = append(inputs, tr)
	}
	if len(inputs) < 2 {
		return fmt.Errorf("merge: need at least two traces, got %d", len(inputs))
	}
	got, err := blktrace.Merge(*label, inputs...)
	if err != nil {
		return err
	}
	stored, err := storeAs(repo, *device, *label, got)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "merged %d traces -> %s: %d IOs in %d bunches\n",
		len(inputs), stored, got.NumIOs(), got.NumBunches())
	return nil
}

// cmdRemap rescales a trace's address space.
func cmdRemap(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("remap", flag.ContinueOnError)
	dir := fs.String("repo", "traces", "trace repository directory")
	name := fs.String("trace", "", "input trace name")
	fromBytes := fs.Int64("from-bytes", 0, "source capacity in bytes (required)")
	toBytes := fs.Int64("to-bytes", 0, "target capacity in bytes (required)")
	label := fs.String("label", "", "output label (default <input>-remap)")
	device := fs.String("device", "raid5-hdd", "device label for the output name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" || *fromBytes <= 0 || *toBytes <= 0 {
		return fmt.Errorf("remap: -trace, -from-bytes and -to-bytes are required")
	}
	repo, err := repository.Open(*dir)
	if err != nil {
		return err
	}
	tr, err := repo.Load(*name)
	if err != nil {
		return err
	}
	got, err := blktrace.RemapAddresses(tr, *fromBytes, *toBytes)
	if err != nil {
		return err
	}
	lbl := *label
	if lbl == "" {
		lbl = strings.TrimSuffix(*name, repository.Ext) + "-remap"
	}
	stored, err := storeAs(repo, *device, lbl, got)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "remapped %s %d -> %d bytes -> %s\n", *name, *fromBytes, *toBytes, stored)
	return nil
}

// cmdDump prints the head of a trace in human-readable form.
func cmdDump(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dump", flag.ContinueOnError)
	dir := fs.String("repo", "traces", "trace repository directory")
	name := fs.String("trace", "", "trace name")
	n := fs.Int("n", 10, "number of bunches to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("dump: -trace is required")
	}
	repo, err := repository.Open(*dir)
	if err != nil {
		return err
	}
	tr, err := repo.Load(*name)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "trace %s (device %s), %d bunches, %d IOs\n", *name, tr.Device, tr.NumBunches(), tr.NumIOs())
	for i, b := range tr.Bunches {
		if i >= *n {
			fmt.Fprintf(out, "... %d more bunches\n", tr.NumBunches()-*n)
			break
		}
		fmt.Fprintf(out, "t=%.6fs (%d IOs)\n", b.Time.Seconds(), len(b.Packages))
		for _, p := range b.Packages {
			op := "R"
			if p.Op == storage.Write {
				op = "W"
			}
			fmt.Fprintf(out, "  %s sector %d size %d\n", op, p.Sector, p.Size)
		}
	}
	return nil
}
