package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/optimize"
)

// optimizeArgs is the fast two-cell TPM search shared by the CLI tests:
// a custom space keeps the grid small while still exercising the full
// search → baseline → record pipeline on the committed fixture trace
// (synthesised from its pinned seed, since tests run outside repo root).
func optimizeArgs(extra ...string) []string {
	args := []string{"optimize", "-policy", "tpm", "-space", "timeout_s=10,60", "-workers", "2"}
	return append(args, extra...)
}

func TestOptimizeCommandLedgerAndWhatIf(t *testing.T) {
	dir := t.TempDir()
	out := runOK(t, optimizeArgs("-ledger-dir", dir)...)
	if !strings.Contains(out, "tpm: winner") || !strings.Contains(out, "beats paper default") {
		t.Fatalf("optimize output missing winner line: %s", out)
	}
	if !strings.Contains(out, "| policy |") {
		t.Fatalf("optimize output missing comparison table: %s", out)
	}

	if _, err := os.Stat(filepath.Join(dir, "LEDGER.md")); err != nil {
		t.Fatalf("LEDGER.md not written: %v", err)
	}
	ledgerPath := filepath.Join(dir, "tpm-decisions.jsonl")
	f, err := os.Open(ledgerPath)
	if err != nil {
		t.Fatalf("open ledger: %v", err)
	}
	h, decisions, err := optimize.ReadLedger(f)
	f.Close()
	if err != nil {
		t.Fatalf("ReadLedger: %v", err)
	}
	if h.Policy != "tpm" || len(decisions) == 0 {
		t.Fatalf("ledger header %+v with %d decisions", h, len(decisions))
	}

	list := runOK(t, "whatif", "-ledger", ledgerPath, "-list")
	if !strings.Contains(list, "replayable") {
		t.Fatalf("whatif -list output: %s", list)
	}
	lines := strings.Split(strings.TrimSpace(list), "\n")
	if len(lines) < 3 { // summary + column header + at least one decision
		t.Fatalf("whatif -list found no replayable decisions: %s", list)
	}
	seq, err := strconv.ParseInt(strings.Fields(lines[2])[0], 10, 64)
	if err != nil {
		t.Fatalf("parse seq from %q: %v", lines[2], err)
	}

	out = runOK(t, "whatif", "-ledger", ledgerPath, "-decision", strconv.FormatInt(seq, 10))
	if !strings.Contains(out, "delta (counterfactual - baseline):") {
		t.Fatalf("whatif output missing delta line: %s", out)
	}
	if !strings.Contains(out, "verdict:") {
		t.Fatalf("whatif output missing verdict: %s", out)
	}
}

func TestOptimizeCommandWorkerIdentity(t *testing.T) {
	serial := runOK(t, optimizeArgs()...)
	fanned := runOK(t, optimizeArgs()...)
	if serial != fanned {
		t.Fatalf("same-args reruns differ:\n%s\nvs\n%s", serial, fanned)
	}
	wide := runOK(t, "optimize", "-policy", "tpm", "-space", "timeout_s=10,60", "-workers", "4")
	if wide != serial {
		t.Fatalf("workers 4 output differs from workers 2:\n%s\nvs\n%s", wide, serial)
	}
}

func TestOptimizeCommandTelemetryArtifacts(t *testing.T) {
	dir := t.TempDir()
	out := runOK(t, optimizeArgs("-telemetry-dir", dir)...)
	if !strings.Contains(out, "telemetry artifacts written") {
		t.Fatalf("optimize output: %s", out)
	}
	for _, name := range []string{"tpm-decisions.jsonl", "optimize-table.md"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("telemetry artifact %s missing: %v", name, err)
		}
	}
}

func TestOptimizeEvolveDriver(t *testing.T) {
	out := runOK(t, "optimize", "-policy", "drpm", "-driver", "evolve",
		"-generations", "2", "-population", "4", "-evolve-seed", "3", "-workers", "2")
	if !strings.Contains(out, "drpm: winner") || !strings.Contains(out, "evolve") {
		t.Fatalf("evolve output: %s", out)
	}
}

func TestOptimizeBadInvocations(t *testing.T) {
	var buf bytes.Buffer
	cases := [][]string{
		{"whatif"},                            // -ledger required
		{"whatif", "-ledger", "no-such.file"}, // missing ledger file
		{"optimize", "-driver", "warp"},
		{"optimize", "-policy", "tpm,drpm", "-space", "timeout_s=10"},
		{"optimize", "-policy", "tpm", "-space", "timeout_s=ten"},
		{"optimize", "-load", "0"},
		{"verify", "-optimize", "-fidelity"},
	}
	for _, args := range cases {
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestVerifyOptimizeCommandPassesOnCommittedCorpus(t *testing.T) {
	out := runOK(t, "verify", "-optimize", "-golden", goldenCorpusDir+"/optimize")
	if !strings.Contains(out, "PASS") || !strings.Contains(out, "optimize corpus verified") {
		t.Fatalf("verify -optimize output: %s", out)
	}
}
