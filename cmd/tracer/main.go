// Command tracer is the TRACER command-line interface: it replaces the
// paper's Windows GUI as the operator-facing front end of the
// framework.  It builds trace repositories, runs load-controlled
// replay tests against the simulated arrays while metering power, and
// queries the results database.
//
// Usage:
//
//	tracer collect   -repo DIR [-device hdd|ssd] [-size N] [-read F] [-random F] [-duration D] [-qd N] [-all] [-workers N]
//	tracer gen-real  -repo DIR [-device hdd|ssd] -kind web|cello|oltp
//	tracer repo      -repo DIR
//	tracer stats     -repo DIR -trace NAME
//	tracer analyze   -repo DIR -trace NAME | -in FILE [-out profile.json] [-name LABEL]
//	tracer test      -repo DIR -trace NAME [-device hdd|ssd] [-loads 10,50,100] [-db FILE] [-workers N]
//	tracer query     [-db FILE] [-device NAME] [-minload F] [-maxload F]
//	tracer convert   -in FILE.srt -out FILE.replay [-srcdev NAME] [-window D]
//	tracer slice     -repo DIR -trace NAME -to D [-from D]
//	tracer merge     -repo DIR -traces A,B[,C...] [-label L]
//	tracer remap     -repo DIR -trace NAME -from-bytes N -to-bytes N
//	tracer dump      -repo DIR -trace NAME [-n 10]
//	tracer replay    -repo DIR -trace NAME | -in FILE [-device hdd|ssd] [-load PCT] [-telemetry-dir DIR] [-cadence D] [-cache-tier dram|ssd [-cache-mb N] [-cache-evict P] [-cache-admit P]]
//	tracer cachestudy [-in FILE | -repo DIR -trace NAME] [-device hdd|ssd] [-loads 50,100] [-specs uncached,dram:32,ssd:256] [-workers N] [-json FILE]
//	tracer fleet     -arrays N [-workers W] [-policy P] [-device hdd|ssd] [-duration D] [-iops F] [-admit-rate F] [-power-cap W] [-telemetry-dir DIR] [-slo SPEC [-watch]] [-fail A@T[:D],... | -mtbf D]
//	tracer report    [-dir DIR] [-alert SEQ]
//	tracer verify    [-golden DIR] [-update] [-tol F] [-telemetry-dir DIR] [-fidelity [-seed N]] [-optimize] [-cache] [-slo]
//	tracer optimize  [-policy P[,P...]] [-space SPEC] [-driver grid|evolve] [-in FILE] [-load PCT] [-workers N] [-ledger-dir DIR] [-telemetry-dir DIR]
//	tracer whatif    -ledger FILE (-decision N | -list) [-in FILE]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/blktrace"
	"repro/internal/experiments"
	"repro/internal/host"
	"repro/internal/metrics"
	"repro/internal/parsweep"
	"repro/internal/powersim"
	"repro/internal/replay"
	"repro/internal/repository"
	"repro/internal/simtime"
	"repro/internal/srt"
	"repro/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracer:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		usage(out)
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "collect":
		return cmdCollect(args[1:], out)
	case "gen-real":
		return cmdGenReal(args[1:], out)
	case "repo":
		return cmdRepo(args[1:], out)
	case "stats":
		return cmdStats(args[1:], out)
	case "analyze":
		return cmdAnalyze(args[1:], out)
	case "test":
		return cmdTest(args[1:], out)
	case "query":
		return cmdQuery(args[1:], out)
	case "convert":
		return cmdConvert(args[1:], out)
	case "slice":
		return cmdSlice(args[1:], out)
	case "merge":
		return cmdMerge(args[1:], out)
	case "remap":
		return cmdRemap(args[1:], out)
	case "dump":
		return cmdDump(args[1:], out)
	case "replay":
		return cmdReplay(args[1:], out)
	case "cachestudy":
		return cmdCacheStudy(args[1:], out)
	case "fleet":
		return cmdFleet(args[1:], out)
	case "report":
		return cmdReport(args[1:], out)
	case "verify":
		return cmdVerify(args[1:], out)
	case "optimize":
		return cmdOptimize(args[1:], out)
	case "whatif":
		return cmdWhatIf(args[1:], out)
	case "help", "-h", "--help":
		usage(out)
		return nil
	default:
		usage(out)
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage(out io.Writer) {
	fmt.Fprintln(out, `tracer — load-controllable energy-efficiency evaluation for storage systems
subcommands: collect, gen-real, repo, stats, analyze, test, query, convert, slice, merge, remap, dump, replay, cachestudy, fleet, report, verify, optimize, whatif`)
}

// cmdCollect builds peak synthetic traces into a repository.
func cmdCollect(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("collect", flag.ContinueOnError)
	dir := fs.String("repo", "traces", "trace repository directory")
	device := fs.String("device", "hdd", "array kind: hdd or ssd")
	size := fs.Int64("size", 4096, "request size in bytes")
	read := fs.Float64("read", 0.5, "read ratio [0,1]")
	random := fs.Float64("random", 0.5, "random ratio [0,1]")
	duration := fs.Duration("duration", 2_000_000_000, "collection duration (virtual time)")
	qd := fs.Int("qd", 8, "outstanding IOs (queue depth)")
	all := fs.Bool("all", false, "collect the paper's full 125-mode sweep")
	seed := fs.Uint64("seed", 1, "generator seed")
	workers := fs.Int("workers", 0, "parallel collection cells (0 = all cores, 1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	kind, err := experiments.KindFromString(*device)
	if err != nil {
		return err
	}
	repo, err := repository.Open(*dir)
	if err != nil {
		return err
	}
	modes := []synth.Mode{{RequestBytes: *size, ReadRatio: *read, RandomRatio: *random}}
	if *all {
		modes = synth.PaperModes()
	}
	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	cfg.Workers = *workers
	// Collection cells (one fresh array each) fan across the worker
	// pool — the -all sweep is 125 modes; storing stays sequential so
	// repository writes and output order are untouched.
	traces, err := parsweep.Map(context.Background(),
		parsweep.Options{
			Workers: cfg.Workers,
			Label:   func(i int) string { return fmt.Sprintf("collect %s", modes[i]) },
		},
		len(modes),
		func(i int) (*blktrace.Trace, error) {
			e, a, err := experiments.NewSystem(cfg, kind)
			if err != nil {
				return nil, err
			}
			return synth.Collect(e, a, synth.CollectParams{
				Mode:            modes[i],
				Duration:        simtime.FromStd(*duration),
				QueueDepth:      *qd,
				WorkingSetBytes: cfg.WorkingSet,
				Seed:            *seed,
			})
		})
	if err != nil {
		return err
	}
	for i, tr := range traces {
		entry, err := repo.StoreSynthetic(kind.String(), modes[i], tr)
		if err != nil {
			return err
		}
		st := blktrace.ComputeStats(tr)
		fmt.Fprintf(out, "collected %s: %d IOs, %.0f IOPS peak, %.2f MBPS peak\n",
			filepath.Base(entry.Path), st.IOs, st.MeanIOPS, st.MeanMBPS)
	}
	return nil
}

// cmdGenReal synthesises the real-world-like traces into a repository.
func cmdGenReal(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gen-real", flag.ContinueOnError)
	dir := fs.String("repo", "traces", "trace repository directory")
	device := fs.String("device", "hdd", "array kind the trace is labelled for")
	kindName := fs.String("kind", "web", "trace kind: web, cello or oltp")
	seed := fs.Uint64("seed", 1, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	kind, err := experiments.KindFromString(*device)
	if err != nil {
		return err
	}
	repo, err := repository.Open(*dir)
	if err != nil {
		return err
	}
	var tr *blktrace.Trace
	var label string
	switch *kindName {
	case "web":
		p := synth.DefaultWebServer()
		p.Seed = *seed
		tr, label = synth.WebServerTrace(p), "web-o4"
	case "cello":
		p := synth.DefaultCello()
		p.Seed = *seed
		tr, label = synth.CelloTrace(p), "cello99"
	case "oltp":
		p := synth.DefaultOLTP()
		p.Seed = *seed
		tr, label = synth.OLTPTrace(p), "oltp"
	default:
		return fmt.Errorf("unknown real-trace kind %q (want web, cello or oltp)", *kindName)
	}
	entry, err := repo.StoreReal(kind.String(), label, tr)
	if err != nil {
		return err
	}
	st := blktrace.ComputeStats(tr)
	fmt.Fprintf(out, "generated %s: %d IOs, read %.1f%%, mean req %.1f KB\n",
		filepath.Base(entry.Path), st.IOs, st.ReadRatio*100, st.AvgRequestBytes/1024)
	return nil
}

// cmdRepo lists the repository.
func cmdRepo(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("repo", flag.ContinueOnError)
	dir := fs.String("repo", "traces", "trace repository directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repo, err := repository.Open(*dir)
	if err != nil {
		return err
	}
	entries, err := repo.List()
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		fmt.Fprintln(out, "(empty repository)")
		return nil
	}
	for _, e := range entries {
		switch {
		case e.IsReal():
			fmt.Fprintf(out, "%s\treal\t%s\n", filepath.Base(e.Path), e.RealLabel)
		case e.IsDerived():
			fmt.Fprintf(out, "%s\tderived\tprofile %s seed %d\n", filepath.Base(e.Path), e.ProfileLabel, e.Seed)
		default:
			fmt.Fprintf(out, "%s\tsynthetic\t%s\n", filepath.Base(e.Path), e.Mode)
		}
	}
	return nil
}

// cmdStats prints trace statistics.
func cmdStats(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	dir := fs.String("repo", "traces", "trace repository directory")
	name := fs.String("trace", "", "trace file name within the repository")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("stats: -trace is required")
	}
	repo, err := repository.Open(*dir)
	if err != nil {
		return err
	}
	tr, err := repo.Load(*name)
	if err != nil {
		return err
	}
	st := blktrace.ComputeStats(tr)
	fmt.Fprintf(out, "trace %s (device %s)\n", *name, tr.Device)
	fmt.Fprintf(out, "bunches %d, IOs %d, duration %.3fs\n", st.Bunches, st.IOs, st.Duration.Seconds())
	fmt.Fprintf(out, "read ratio %.2f%%, random ratio %.2f%%, mean request %.1f KB\n",
		st.ReadRatio*100, st.RandomRatio*100, st.AvgRequestBytes/1024)
	fmt.Fprintf(out, "offered load: %.1f IOPS, %.2f MBPS, max concurrency %d\n",
		st.MeanIOPS, st.MeanMBPS, st.MaxBunchSize)
	return nil
}

// parseLoads parses "10,50,100" into proportions.
func parseLoads(s string) ([]float64, error) {
	var loads []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		pct, err := strconv.ParseFloat(part, 64)
		if err != nil || pct <= 0 || pct > 1000 {
			return nil, fmt.Errorf("bad load level %q", part)
		}
		loads = append(loads, pct/100)
	}
	if len(loads) == 0 {
		return nil, fmt.Errorf("no load levels given")
	}
	return loads, nil
}

// cmdTest runs energy-efficiency tests: replay at each load level with
// power metering, print one row per level, and persist records.
func cmdTest(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	dir := fs.String("repo", "traces", "trace repository directory")
	name := fs.String("trace", "", "trace file name within the repository")
	device := fs.String("device", "hdd", "array kind: hdd or ssd")
	loadsStr := fs.String("loads", "100", "comma-separated load percentages (e.g. 10,50,100)")
	dbPath := fs.String("db", "", "results database file (JSON); empty disables persistence")
	cycle := fs.Duration("cycle", 1_000_000_000, "sampling cycle")
	workers := fs.Int("workers", 0, "parallel load-level replays (0 = all cores, 1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("test: -trace is required")
	}
	kind, err := experiments.KindFromString(*device)
	if err != nil {
		return err
	}
	loads, err := parseLoads(*loadsStr)
	if err != nil {
		return err
	}
	repo, err := repository.Open(*dir)
	if err != nil {
		return err
	}
	tr, err := repo.Load(*name)
	if err != nil {
		return err
	}
	var db *host.DB
	if *dbPath != "" {
		if db, err = host.LoadDB(*dbPath); err != nil {
			return err
		}
	}
	cfg := experiments.DefaultConfig()
	cfg.Workers = *workers

	// Each load level replays on its own fresh array: fan the levels
	// across the worker pool, then print and persist in input order.
	type cell struct {
		res     *replay.Result
		samples []powersim.Sample
		watts   float64
		eff     metrics.Efficiency
	}
	cells, err := parsweep.Map(context.Background(),
		parsweep.Options{
			Workers: cfg.Workers,
			Label:   func(i int) string { return fmt.Sprintf("load %v", loads[i]) },
		},
		len(loads),
		func(i int) (cell, error) {
			e, a, err := experiments.NewSystem(cfg, kind)
			if err != nil {
				return cell{}, err
			}
			res, err := replay.ReplayAtLoad(e, a, tr, loads[i], replay.Options{SamplingCycle: simtime.FromStd(*cycle)})
			if err != nil {
				return cell{}, err
			}
			meter := powersim.DefaultMeter(a.PowerSource())
			samples := meter.Measure(res.Start, res.End)
			watts := powersim.MeanWatts(samples)
			return cell{
				res:     res,
				samples: samples,
				watts:   watts,
				eff:     metrics.NewEfficiency(res.IOPS, res.MBPS, watts, powersim.EnergyJ(samples)),
			}, nil
		})
	if err != nil {
		return err
	}

	fmt.Fprintln(out, "load%\tIOPS\tMBPS\tresp(ms)\twatts\tIOPS/W\tMBPS/kW")
	for i, load := range loads {
		res, samples, watts, eff := cells[i].res, cells[i].samples, cells[i].watts, cells[i].eff
		fmt.Fprintf(out, "%.0f\t%.1f\t%.3f\t%.2f\t%.1f\t%.3f\t%.2f\n",
			load*100, res.IOPS, res.MBPS, res.MeanResponse.Seconds()*1000, watts, eff.IOPSPerWatt, eff.MBPSPerKW)
		if db != nil {
			var volts, amps float64
			if len(samples) > 0 {
				volts = samples[0].Volts
				amps = watts / volts
			}
			db.Insert(host.Record{
				Device:    kind.String(),
				TraceName: *name,
				Mode:      host.ModeVector{LoadProportion: load},
				Power:     host.PowerData{MeanWatts: watts, MeanVolts: volts, MeanAmps: amps, EnergyJ: eff.EnergyJ, Samples: len(samples)},
				Perf: host.PerfData{
					IOPS: res.IOPS, MBPS: res.MBPS,
					MeanResponseMs: res.MeanResponse.Seconds() * 1000,
					MaxResponseMs:  res.MaxResponse.Seconds() * 1000,
					DurationS:      res.Duration().Seconds(), IOs: res.Completed,
				},
				Efficiency: host.EfficiencyData{IOPSPerWatt: eff.IOPSPerWatt, MBPSPerKW: eff.MBPSPerKW},
			})
		}
	}
	if db != nil {
		if err := db.Save(*dbPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "saved %d records to %s\n", db.Len(), *dbPath)
	}
	return nil
}

// cmdQuery lists stored records.
func cmdQuery(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	dbPath := fs.String("db", "results.json", "results database file")
	device := fs.String("device", "", "filter by device")
	minLoad := fs.Float64("minload", 0, "minimum load proportion")
	maxLoad := fs.Float64("maxload", 0, "maximum load proportion (0 = unbounded)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	db, err := host.LoadDB(*dbPath)
	if err != nil {
		return err
	}
	recs := db.Select(host.Query{Device: *device, MinLoad: *minLoad, MaxLoad: *maxLoad})
	if len(recs) == 0 {
		fmt.Fprintln(out, "(no records)")
		return nil
	}
	fmt.Fprintln(out, "id\ttime\tdevice\ttrace\tload%\tIOPS\tMBPS\twatts\tIOPS/W\tMBPS/kW")
	for _, r := range recs {
		fmt.Fprintf(out, "%d\t%s\t%s\t%s\t%.0f\t%.1f\t%.3f\t%.1f\t%.3f\t%.2f\n",
			r.ID, r.TestTime.Format("2006-01-02 15:04:05"), r.Device, r.TraceName,
			r.Mode.LoadProportion*100, r.Perf.IOPS, r.Perf.MBPS,
			r.Power.MeanWatts, r.Efficiency.IOPSPerWatt, r.Efficiency.MBPSPerKW)
	}
	return nil
}

// cmdConvert transforms SRT traces to the replay format.
func cmdConvert(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	in := fs.String("in", "", "input .srt file")
	outPath := fs.String("out", "", "output .replay file")
	srcDev := fs.String("srcdev", "", "filter records to one source device")
	window := fs.Duration("window", 100_000, "bunch coalescing window")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *outPath == "" {
		return fmt.Errorf("convert: -in and -out are required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := srt.ConvertStream(f, srt.ConvertOptions{Device: *srcDev, BunchWindow: simtime.FromStd(*window)})
	if err != nil {
		return err
	}
	if err := blktrace.WriteFile(*outPath, tr); err != nil {
		return err
	}
	st := blktrace.ComputeStats(tr)
	fmt.Fprintf(out, "converted %s -> %s: %d IOs in %d bunches over %.3fs\n",
		*in, *outPath, st.IOs, st.Bunches, st.Duration.Seconds())
	return nil
}
