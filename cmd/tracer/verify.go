package main

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/check"
)

// cmdVerify re-runs the golden conformance corpus: every fixture trace
// is replayed on both simulated arrays with the physics-invariant suite
// armed, and the results are diffed against the committed golden JSON
// with tolerance-aware comparison.  -update regenerates the JSON after
// an intentional model change.
func cmdVerify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	dir := fs.String("golden", "internal/check/testdata/golden", "golden fixture directory")
	update := fs.Bool("update", false, "regenerate the golden outputs instead of diffing")
	tol := fs.Float64("tol", check.DefaultTol, "relative tolerance for float comparison")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := check.VerifyGolden(*dir, *update, *tol, out); err != nil {
		return err
	}
	if !*update {
		fmt.Fprintln(out, "golden corpus verified")
	}
	return nil
}
