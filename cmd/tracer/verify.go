package main

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/check"
)

// cmdVerify re-runs the golden conformance corpus: every fixture trace
// is replayed on both simulated arrays with the physics-invariant suite
// armed, and the results are diffed against the committed golden JSON
// with tolerance-aware comparison.  -update regenerates the JSON after
// an intentional model change.  -fidelity instead round-trips every
// fixture through the workload characterizer (analyze → synthesize →
// replay both) and requires the efficiency metrics to agree.  -slo runs
// the rebuild-storm conformance gate: burn-rate alerts and the status
// snapshot must be byte-identical at workers 1/2/8 and match the
// committed goldens, with the Prometheus scrape agreeing with
// summary.json to the exact integer.
func cmdVerify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	dir := fs.String("golden", "internal/check/testdata/golden", "golden fixture directory")
	update := fs.Bool("update", false, "regenerate the golden outputs instead of diffing")
	tol := fs.Float64("tol", 0, "relative tolerance for comparison (0 = mode default)")
	fidelity := fs.Bool("fidelity", false, "run the workload round-trip fidelity check instead of the golden diff")
	optimizeGate := fs.Bool("optimize", false, "run the optimize determinism gate + golden diff instead of the replay corpus")
	cacheGate := fs.Bool("cache", false, "run the cache determinism gate + pass-through cross-check instead of the replay corpus")
	sloGate := fs.Bool("slo", false, "run the SLO rebuild-storm gate (burn-rate alerts byte-identical at workers 1/2/8) instead of the replay corpus")
	seed := fs.Uint64("seed", 1, "fidelity synthesis seed")
	telemetryDir := fs.String("telemetry-dir", "", "export telemetry (or, with -optimize, the winners' decision ledgers) for the first failing fixture into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sloGate {
		if *fidelity || *optimizeGate || *cacheGate {
			return fmt.Errorf("verify: -slo is mutually exclusive with -fidelity, -optimize and -cache")
		}
		sloDir := *dir
		if sloDir == "internal/check/testdata/golden" {
			sloDir = "internal/check/testdata/golden/slo"
		}
		opts := check.VerifyOptions{Update: *update, Tol: *tol, TelemetryDir: *telemetryDir}
		if err := check.VerifySLO(sloDir, opts, out); err != nil {
			return err
		}
		if !*update {
			fmt.Fprintln(out, "slo corpus verified (rebuild storm fires and resolves, alerts byte-identical at workers 1/2/8, scrape agrees with summary.json)")
		}
		return nil
	}
	if *cacheGate {
		if *fidelity || *optimizeGate {
			return fmt.Errorf("verify: -cache is mutually exclusive with -fidelity and -optimize")
		}
		corpusDir := *dir
		cacheDir := *dir
		if cacheDir == "internal/check/testdata/golden" {
			cacheDir = "internal/check/testdata/golden/cache"
		} else {
			corpusDir = "" // custom dir: no replay corpus to cross-check
		}
		opts := check.VerifyOptions{Update: *update, Tol: *tol, TelemetryDir: *telemetryDir}
		if err := check.VerifyCache(cacheDir, corpusDir, opts, out); err != nil {
			return err
		}
		if !*update {
			fmt.Fprintln(out, "cache corpus verified (study deterministic at workers 1/2/8, zero-capacity tier byte-identical, DRAM tier beats uncached)")
		}
		return nil
	}
	if *optimizeGate {
		if *fidelity {
			return fmt.Errorf("verify: -optimize and -fidelity are mutually exclusive")
		}
		dir := *dir
		if dir == "internal/check/testdata/golden" {
			dir = "internal/check/testdata/golden/optimize"
		}
		opts := check.VerifyOptions{Update: *update, Tol: *tol, TelemetryDir: *telemetryDir}
		if err := check.VerifyOptimize(dir, opts, out); err != nil {
			return err
		}
		if !*update {
			fmt.Fprintln(out, "optimize corpus verified (search deterministic at workers 1/2/8, winners beat paper defaults)")
		}
		return nil
	}
	if *fidelity {
		if *update {
			return fmt.Errorf("verify: -fidelity has no goldens to -update")
		}
		if err := check.VerifyFidelity(*dir, *seed, *tol, out); err != nil {
			return err
		}
		fmt.Fprintln(out, "workload round-trip fidelity verified")
		return nil
	}
	opts := check.VerifyOptions{Update: *update, Tol: *tol, TelemetryDir: *telemetryDir}
	// A partial failure no longer aborts the corpus: every fixture gets
	// its PASS/FAIL line and the summary error below is the one-line
	// verdict (non-zero exit via main).
	if err := check.VerifyGolden(*dir, opts, out); err != nil {
		return err
	}
	if !*update {
		fmt.Fprintln(out, "golden corpus verified")
	}
	return nil
}
