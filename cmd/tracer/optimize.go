package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/blktrace"
	"repro/internal/check"
	"repro/internal/experiments"
	"repro/internal/optimize"
	"repro/internal/repository"
	"repro/internal/telemetry"
)

// defaultOptimizeFixture is the committed golden trace the optimize
// acceptance run targets; when absent (running outside the repo) the
// identical trace is synthesised from its pinned seed.
const defaultOptimizeFixture = "internal/check/testdata/golden/optimize/idle-web.trace.txt"

// loadOptimizeTrace resolves the trace for optimize/whatif: -in file
// (text fixtures by suffix, binary otherwise), repository entry, or
// the committed idle-heavy fixture.
func loadOptimizeTrace(repoDir, name, in string) (*blktrace.Trace, error) {
	switch {
	case in != "":
		if strings.HasSuffix(in, check.TraceSuffix) {
			return check.LoadFixtureTrace(in)
		}
		return blktrace.ReadFile(in)
	case name != "":
		repo, err := repository.Open(repoDir)
		if err != nil {
			return nil, err
		}
		return repo.Load(name)
	default:
		if _, err := os.Stat(defaultOptimizeFixture); err == nil {
			return check.LoadFixtureTrace(defaultOptimizeFixture)
		}
		return check.OptimizeFixtureTrace(), nil
	}
}

// parseSpace decodes "-space timeout_s=2,10,60;levels=2,3,4" into a
// search space for policy.
func parseSpace(policy, spec string) (optimize.Space, error) {
	sp := optimize.Space{Policy: policy}
	for _, dim := range strings.Split(spec, ";") {
		dim = strings.TrimSpace(dim)
		if dim == "" {
			continue
		}
		name, vals, ok := strings.Cut(dim, "=")
		if !ok {
			return sp, fmt.Errorf("optimize: bad space dimension %q (want name=v1,v2,...)", dim)
		}
		d := optimize.Dim{Name: strings.TrimSpace(name)}
		for _, v := range strings.Split(vals, ",") {
			x, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return sp, fmt.Errorf("optimize: bad value %q in dimension %q", v, name)
			}
			d.Values = append(d.Values, x)
		}
		sp.Dims = append(sp.Dims, d)
	}
	if err := sp.Validate(); err != nil {
		return sp, err
	}
	return sp, nil
}

// cmdOptimize searches a conserve policy's parameter space for the
// most energy-efficient operating point under the weighted fitness
// (IOPS/Watt reward, p99 penalty, spin-up wear penalty), prints the
// policy-vs-baseline table, and optionally records the winner's full
// decision ledger for counterfactual replay with `tracer whatif`.
func cmdOptimize(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("optimize", flag.ContinueOnError)
	policies := fs.String("policy", "tpm,drpm", "comma-separated conserve policies to search (tpm,drpm,eraid,pdc,maid,cache or all)")
	spaceSpec := fs.String("space", "", "custom search space 'name=v1,v2;name2=...' (single -policy only; default: built-in grid)")
	driver := fs.String("driver", "grid", "search driver: grid or evolve")
	generations := fs.Int("generations", 8, "evolve: generation count")
	population := fs.Int("population", 12, "evolve: population size")
	evolveSeed := fs.Uint64("evolve-seed", 1, "evolve: selection/mutation seed")
	repoDir := fs.String("repo", "traces", "trace repository directory")
	name := fs.String("trace", "", "trace file name within the repository")
	in := fs.String("in", "", "trace file to optimize against (default: committed idle-web golden fixture)")
	load := fs.Float64("load", 25, "replay load percentage")
	seed := fs.Uint64("seed", 7, "simulation seed (drives power metering)")
	wIOPSW := fs.Float64("w-iops-per-watt", optimize.DefaultWeights().IOPSPerWatt, "fitness reward per IOPS/Watt")
	wP99 := fs.Float64("w-p99-ms", optimize.DefaultWeights().P99PerMs, "fitness penalty per ms of p99 latency")
	wWear := fs.Float64("w-spinup", optimize.DefaultWeights().WearPerSpinUp, "fitness penalty per spin-up cycle")
	workers := fs.Int("workers", 0, "parallel evaluation cells (0 = all cores, 1 = sequential)")
	ledgerDir := fs.String("ledger-dir", "", "write each winner's decision ledger (and LEDGER.md table) into this directory")
	telemetryDir := fs.String("telemetry-dir", "", "export search artifacts through the telemetry exporter into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *load <= 0 || *load > 1000 {
		return fmt.Errorf("optimize: bad load percentage %v", *load)
	}
	if *driver != "grid" && *driver != "evolve" {
		return fmt.Errorf("optimize: unknown driver %q (want grid or evolve)", *driver)
	}
	list := strings.Split(*policies, ",")
	if *policies == "all" {
		list = []string{"tpm", "drpm", "eraid", "pdc", "maid", "cache"}
	}
	if *spaceSpec != "" && len(list) != 1 {
		return fmt.Errorf("optimize: -space needs exactly one -policy")
	}
	trace, err := loadOptimizeTrace(*repoDir, *name, *in)
	if err != nil {
		return err
	}
	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	opts := optimize.Options{
		Config:  cfg,
		Load:    *load / 100,
		Weights: optimize.Weights{IOPSPerWatt: *wIOPSW, P99PerMs: *wP99, WearPerSpinUp: *wWear},
		Workers: *workers,
	}

	var rows []optimize.TableRow
	ledgers := map[string]optimize.RecordedRun{}
	for _, policy := range list {
		policy = strings.TrimSpace(policy)
		space, err := optimize.DefaultSpace(policy)
		if err != nil {
			return err
		}
		if *spaceSpec != "" {
			if space, err = parseSpace(policy, *spaceSpec); err != nil {
				return err
			}
		}
		var res *optimize.SearchResult
		if *driver == "evolve" {
			res, err = optimize.Evolve(context.Background(), space, trace, optimize.EvolveOptions{
				Options:     opts,
				Generations: *generations,
				Population:  *population,
				Seed:        *evolveSeed,
			})
		} else {
			res, err = optimize.Grid(context.Background(), space, trace, opts)
		}
		if err != nil {
			return err
		}
		baseline, err := optimize.Baseline(opts, policy, trace)
		if err != nil {
			return err
		}
		ev, decisions, err := optimize.Record(opts, res.Best.Point, trace)
		if err != nil {
			return err
		}
		ledgers[policy] = optimize.RecordedRun{
			Header: optimize.LedgerHeader{
				Policy: res.Best.Point.Policy,
				Params: res.Best.Point.Params,
				Load:   opts.Load,
				Seed:   cfg.Seed,
			},
			Eval:      ev,
			Decisions: decisions,
		}
		rows = append(rows, optimize.TableRow{
			Policy: policy, Baseline: baseline, Best: res.Best,
			Driver: *driver, Cells: res.Cells,
		})
		verdict := "beats"
		if res.Best.Fitness <= baseline.Fitness {
			verdict = "does not beat"
		}
		fmt.Fprintf(out, "%s: winner `%s` fitness %.4f %s paper default %.4f (%d cells, %d decisions)\n",
			policy, res.Best.Point, res.Best.Fitness, verdict, baseline.Fitness, res.Cells, len(decisions))
	}

	fmt.Fprintln(out)
	optimize.RenderTable(out, rows)

	if *ledgerDir != "" {
		if err := writeOptimizeLedgers(*ledgerDir, rows, ledgers); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nledgers written to %s (replay one with: tracer whatif -ledger %s)\n",
			*ledgerDir, filepath.Join(*ledgerDir, rows[0].Policy+"-decisions.jsonl"))
	}
	if *telemetryDir != "" {
		set := telemetry.New(telemetry.Options{})
		for policy, run := range ledgers {
			run := run
			set.AddArtifact(policy+"-decisions.jsonl", func(w io.Writer) error {
				return optimize.WriteLedger(w, run.Header, run.Decisions)
			})
		}
		set.AddArtifact("optimize-table.md", func(w io.Writer) error {
			optimize.RenderTable(w, rows)
			return nil
		})
		if err := set.WriteDir(*telemetryDir); err != nil {
			return err
		}
		fmt.Fprintf(out, "telemetry artifacts written to %s\n", *telemetryDir)
	}
	return nil
}

// writeOptimizeLedgers exports one decision ledger per policy plus the
// LEDGER.md comparison table.
func writeOptimizeLedgers(dir string, rows []optimize.TableRow, ledgers map[string]optimize.RecordedRun) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	policies := make([]string, 0, len(ledgers))
	for p := range ledgers {
		policies = append(policies, p)
	}
	sort.Strings(policies)
	for _, p := range policies {
		run := ledgers[p]
		f, err := os.Create(filepath.Join(dir, p+"-decisions.jsonl"))
		if err != nil {
			return err
		}
		err = optimize.WriteLedger(f, run.Header, run.Decisions)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	f, err := os.Create(filepath.Join(dir, "LEDGER.md"))
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "# Policy search vs paper defaults")
	fmt.Fprintln(f)
	optimize.RenderTable(f, rows)
	return f.Close()
}

// cmdWhatIf counterfactually replays one recorded policy decision: the
// ledgered run is replayed once as recorded and once with the chosen
// decision vetoed, and the energy/latency/fitness deltas are reported.
func cmdWhatIf(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("whatif", flag.ContinueOnError)
	ledgerPath := fs.String("ledger", "", "decision ledger (JSONL) written by tracer optimize")
	decision := fs.Int64("decision", -1, "sequence number of the decision to replay counterfactually")
	listOnly := fs.Bool("list", false, "list replayable decisions instead of replaying one")
	repoDir := fs.String("repo", "traces", "trace repository directory")
	name := fs.String("trace", "", "trace file name within the repository")
	in := fs.String("in", "", "trace the ledger was recorded against (default: committed idle-web golden fixture)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ledgerPath == "" {
		return fmt.Errorf("whatif: -ledger is required")
	}
	f, err := os.Open(*ledgerPath)
	if err != nil {
		return err
	}
	h, decisions, err := optimize.ReadLedger(f)
	f.Close()
	if err != nil {
		return err
	}
	if *listOnly {
		replayable := optimize.ReplayableDecisions(decisions)
		fmt.Fprintf(out, "ledger %s: %s, %d decisions (%d replayable)\n",
			*ledgerPath, h.Point(), len(decisions), len(replayable))
		fmt.Fprintln(out, "seq\tat(s)\tkind\tdisk\tidle(s)")
		for _, d := range replayable {
			fmt.Fprintf(out, "%d\t%.3f\t%s\t%d\t%.3f\n",
				d.Seq, float64(d.At)/1e9, d.Kind, d.Disk, float64(d.IdleNs)/1e9)
		}
		return nil
	}
	if *decision < 0 {
		return fmt.Errorf("whatif: -decision is required (use -list to see candidates)")
	}
	trace, err := loadOptimizeTrace(*repoDir, *name, *in)
	if err != nil {
		return err
	}
	w, err := optimize.Counterfactual(optimize.Options{Config: experiments.DefaultConfig()}, h, decisions, *decision, trace)
	if err != nil {
		return err
	}
	d := w.Decision
	fmt.Fprintf(out, "decision %d: %s %s disk %d at %.3fs\n", d.Seq, d.Policy, d.Kind, d.Disk, float64(d.At)/1e9)
	fmt.Fprintf(out, "baseline:       %.1f J, %.2f W, p99 %.2f ms, fitness %.4f, %d spin-ups\n",
		w.Baseline.EnergyJ, w.Baseline.MeanWatts, w.Baseline.P99Ms, w.Baseline.Fitness, w.Baseline.SpinUps)
	fmt.Fprintf(out, "counterfactual: %.1f J, %.2f W, p99 %.2f ms, fitness %.4f, %d spin-ups\n",
		w.Counterfactual.EnergyJ, w.Counterfactual.MeanWatts, w.Counterfactual.P99Ms, w.Counterfactual.Fitness, w.Counterfactual.SpinUps)
	fmt.Fprintf(out, "delta (counterfactual - baseline): energy %+.1f J, p99 %+.2f ms, fitness %+.4f\n",
		w.DeltaEnergyJ, w.DeltaP99Ms, w.DeltaFitness)
	switch {
	case w.DeltaEnergyJ > 0 && w.DeltaP99Ms <= 0:
		fmt.Fprintln(out, "verdict: the decision was saving energy at no latency cost")
	case w.DeltaEnergyJ > 0:
		fmt.Fprintln(out, "verdict: the decision traded latency for energy savings")
	case w.DeltaEnergyJ < 0:
		fmt.Fprintln(out, "verdict: the decision cost energy (idle gap below break-even)")
	default:
		fmt.Fprintln(out, "verdict: the decision had no measurable energy effect")
	}
	return nil
}
