package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/blktrace"
	"repro/internal/repository"
	"repro/internal/srt"
	"repro/internal/storage"
	"repro/internal/workload"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v\noutput:\n%s", args, err, buf.String())
	}
	return buf.String()
}

func TestCollectRepoStatsTestQueryFlow(t *testing.T) {
	dir := t.TempDir()
	repoDir := filepath.Join(dir, "traces")
	dbPath := filepath.Join(dir, "results.json")

	out := runOK(t, "collect", "-repo", repoDir, "-size", "4096", "-read", "0", "-random", "0.5", "-duration", "1s")
	if !strings.Contains(out, "collected") {
		t.Fatalf("collect output: %s", out)
	}

	out = runOK(t, "repo", "-repo", repoDir)
	if !strings.Contains(out, "rs4096_rd0_rn50") {
		t.Fatalf("repo output: %s", out)
	}
	traceName := strings.Fields(out)[0]

	out = runOK(t, "stats", "-repo", repoDir, "-trace", traceName)
	if !strings.Contains(out, "read ratio 0.00%") {
		t.Fatalf("stats output: %s", out)
	}

	out = runOK(t, "test", "-repo", repoDir, "-trace", traceName, "-loads", "20,100", "-db", dbPath)
	if !strings.Contains(out, "IOPS/W") || !strings.Contains(out, "saved 2 records") {
		t.Fatalf("test output: %s", out)
	}

	out = runOK(t, "query", "-db", dbPath)
	if !strings.Contains(out, "raid5-hdd") {
		t.Fatalf("query output: %s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 records
		t.Fatalf("query lines = %d: %s", len(lines), out)
	}
}

func TestGenRealAndTest(t *testing.T) {
	dir := t.TempDir()
	repoDir := filepath.Join(dir, "traces")
	out := runOK(t, "gen-real", "-repo", repoDir, "-kind", "web")
	if !strings.Contains(out, "web-o4") {
		t.Fatalf("gen-real output: %s", out)
	}
	out = runOK(t, "gen-real", "-repo", repoDir, "-kind", "oltp")
	if !strings.Contains(out, "oltp") {
		t.Fatalf("gen-real oltp output: %s", out)
	}
	name := repository.RealName("raid5-hdd", "web-o4")
	out = runOK(t, "test", "-repo", repoDir, "-trace", name, "-loads", "50")
	if !strings.Contains(out, "50\t") {
		t.Fatalf("test output: %s", out)
	}
}

func TestConvertCommand(t *testing.T) {
	dir := t.TempDir()
	srtPath := filepath.Join(dir, "in.srt")
	outPath := filepath.Join(dir, "out.replay")
	recs := []srt.Record{
		{Timestamp: 1.0, Device: "d0", StartByte: 0, Length: 4096, Op: storage.Read},
		{Timestamp: 1.5, Device: "d0", StartByte: 8192, Length: 512, Op: storage.Write},
	}
	f, err := os.Create(srtPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := srt.WriteRecords(f, recs); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out := runOK(t, "convert", "-in", srtPath, "-out", outPath)
	if !strings.Contains(out, "2 IOs") {
		t.Fatalf("convert output: %s", out)
	}
	if _, err := os.Stat(outPath); err != nil {
		t.Fatal(err)
	}
}

func TestBadInvocations(t *testing.T) {
	var buf bytes.Buffer
	cases := [][]string{
		{},
		{"frobnicate"},
		{"stats"},
		{"test"},
		{"test", "-trace", "x", "-loads", "abc"},
		{"test", "-trace", "x", "-device", "floppy"},
		{"gen-real", "-kind", "nope", "-repo", "x"},
		{"convert"},
	}
	for _, args := range cases {
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
	// t.TempDir cleanup guards against stray writes from bad invocations.
	if err := run([]string{"help"}, &buf); err != nil {
		t.Fatalf("help: %v", err)
	}
}

func TestParseLoads(t *testing.T) {
	got, err := parseLoads("10, 50,100")
	if err != nil || len(got) != 3 || got[0] != 0.1 || got[2] != 1.0 {
		t.Fatalf("parseLoads = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-5", "abc", "2000"} {
		if _, err := parseLoads(bad); err == nil {
			t.Errorf("parseLoads(%q) accepted", bad)
		}
	}
}

func TestTraceToolSubcommands(t *testing.T) {
	dir := t.TempDir()
	repoDir := filepath.Join(dir, "traces")
	runOK(t, "gen-real", "-repo", repoDir, "-kind", "web")
	name := repository.RealName("raid5-hdd", "web-o4")

	out := runOK(t, "slice", "-repo", repoDir, "-trace", name, "-from", "10s", "-to", "30s")
	if !strings.Contains(out, "sliced") {
		t.Fatalf("slice output: %s", out)
	}
	sliced := repository.RealName("raid5-hdd", strings.TrimSuffix(name, repository.Ext)+"-slice")

	out = runOK(t, "merge", "-repo", repoDir, "-traces", name+","+sliced, "-label", "combo")
	if !strings.Contains(out, "merged 2 traces") {
		t.Fatalf("merge output: %s", out)
	}

	out = runOK(t, "remap", "-repo", repoDir, "-trace", name, "-from-bytes", "1099511627776", "-to-bytes", "1073741824")
	if !strings.Contains(out, "remapped") {
		t.Fatalf("remap output: %s", out)
	}

	out = runOK(t, "dump", "-repo", repoDir, "-trace", name, "-n", "3")
	if !strings.Contains(out, "t=") || !strings.Contains(out, "more bunches") {
		t.Fatalf("dump output: %s", out)
	}
}

func TestTraceToolErrors(t *testing.T) {
	var buf bytes.Buffer
	cases := [][]string{
		{"slice"}, // missing trace/to
		{"merge", "-traces", "onlyone"},
		{"remap", "-trace", "x"}, // missing capacities
		{"dump"},                 // missing trace
	}
	for _, args := range cases {
		if err := run(append(args, "-repo", t.TempDir()), &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// goldenCorpusDir is the committed conformance corpus, relative to this
// package's directory (the test working directory).
const goldenCorpusDir = "../../internal/check/testdata/golden"

func TestVerifyCommandPassesOnCommittedCorpus(t *testing.T) {
	out := runOK(t, "verify", "-golden", goldenCorpusDir)
	if !strings.Contains(out, "golden corpus verified") || strings.Count(out, "PASS") < 3 {
		t.Fatalf("verify output: %s", out)
	}
}

func TestVerifyCommandUpdateRegenerates(t *testing.T) {
	dir := t.TempDir()
	traces, err := filepath.Glob(filepath.Join(goldenCorpusDir, "*.trace.txt"))
	if err != nil || len(traces) == 0 {
		t.Fatalf("no corpus traces: %v", err)
	}
	blob, err := os.ReadFile(traces[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, filepath.Base(traces[0])), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	out := runOK(t, "verify", "-golden", dir, "-update")
	if !strings.Contains(out, "UPDATED") {
		t.Fatalf("update output: %s", out)
	}
	out = runOK(t, "verify", "-golden", dir)
	if !strings.Contains(out, "golden corpus verified") {
		t.Fatalf("post-update verify output: %s", out)
	}
}

// TestVerifyCommandTruncatedFixture is the satellite regression: a
// fixture truncated mid-bunch must produce a labelled error and a
// non-zero exit path, not a panic.
func TestVerifyCommandTruncatedFixture(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "cut.trace.txt")
	text := "# blktrace-text v1\ndevice cut\nB 0 4\n0 4096 R\n8 4096 W\n"
	if err := os.WriteFile(bad, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run([]string{"verify", "-golden", dir}, &buf)
	if err == nil {
		t.Fatal("verify accepted a truncated fixture")
	}
	if !strings.Contains(err.Error(), "cut.trace.txt") || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("error not labelled: %v", err)
	}
}

// TestReplayAndReportCommands drives the telemetry walkthrough the
// README documents: instrumented replay into an artifact directory,
// then `tracer report` over it.
func TestReplayAndReportCommands(t *testing.T) {
	dir := t.TempDir()
	repoDir := filepath.Join(dir, "traces")
	runOK(t, "gen-real", "-repo", repoDir, "-kind", "web")
	name := repository.RealName("raid5-hdd", "web-o4")
	telDir := filepath.Join(dir, "telemetry")

	out := runOK(t, "replay", "-repo", repoDir, "-trace", name, "-load", "50", "-telemetry-dir", telDir)
	if !strings.Contains(out, "replayed") || !strings.Contains(out, "tracer report") {
		t.Fatalf("replay output: %s", out)
	}
	for _, f := range []string{"summary.json", "series.csv", "events.jsonl", "trace.json", "power_wall.csv"} {
		if _, err := os.Stat(filepath.Join(telDir, f)); err != nil {
			t.Fatalf("artifact %s missing: %v", f, err)
		}
	}

	out = runOK(t, "report", "-dir", telDir)
	for _, want := range []string{"replay.issued", "HISTOGRAM", "POWER", "wall"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestShardedAndMappedReplayCommands drives -replay-shards and -mmap
// through the CLI and requires the reported numbers to match the serial
// run exactly at every shard count and via the zero-copy trace.
func TestShardedAndMappedReplayCommands(t *testing.T) {
	dir := t.TempDir()
	repoDir := filepath.Join(dir, "traces")
	runOK(t, "gen-real", "-repo", repoDir, "-kind", "web")
	name := repository.RealName("raid5-hdd", "web-o4")
	repo, err := repository.Open(repoDir)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := repo.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "t.replay")
	rmap := filepath.Join(dir, "t.rmap")
	if err := blktrace.WriteFile(bin, tr); err != nil {
		t.Fatal(err)
	}
	if err := blktrace.WriteMappedFile(rmap, tr); err != nil {
		t.Fatal(err)
	}

	// The numeric tail after the shard annotation must be identical
	// across executors and trace formats.
	numbers := func(out string) string {
		i := strings.LastIndex(out, "): ")
		j := strings.Index(out, "\ntelemetry")
		if i < 0 || j < 0 || j < i {
			t.Fatalf("unexpected replay output: %s", out)
		}
		return out[i:j]
	}
	serial := runOK(t, "replay", "-in", bin, "-telemetry-dir", filepath.Join(dir, "tel-serial"))
	for i, args := range [][]string{
		{"replay", "-in", bin, "-replay-shards", "4", "-telemetry-dir", filepath.Join(dir, "tel-s4")},
		{"replay", "-in", rmap, "-mmap", "-telemetry-dir", filepath.Join(dir, "tel-mmap")},
		{"replay", "-in", rmap, "-mmap", "-replay-shards", "2", "-telemetry-dir", filepath.Join(dir, "tel-mmap-s2")},
	} {
		out := runOK(t, args...)
		if numbers(out) != numbers(serial) {
			t.Errorf("case %d: results diverged from serial:\n got %s\nwant %s", i, numbers(out), numbers(serial))
		}
	}

	// A filtered mmap replay materializes and still works.
	out := runOK(t, "replay", "-in", rmap, "-mmap", "-load", "50", "-replay-shards", "2",
		"-telemetry-dir", filepath.Join(dir, "tel-mmap-load"))
	if !strings.Contains(out, "load 50%") {
		t.Fatalf("filtered mmap replay output: %s", out)
	}
}

func TestReplayAndReportErrors(t *testing.T) {
	var buf bytes.Buffer
	cases := [][]string{
		{"replay"},                            // neither -trace nor -in
		{"replay", "-trace", "a", "-in", "b"}, // both sources
		{"replay", "-in", "x.replay", "-load", "0"},
		{"replay", "-in", "x.replay", "-device", "tape"},
		{"replay", "-in", "x.replay", "-replay-shards", "0"},
		{"replay", "-trace", "a", "-mmap"}, // mmap needs -in
		{"report", "-dir", filepath.Join(t.TempDir(), "missing")},
	}
	for _, args := range cases {
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestAnalyzeCommand(t *testing.T) {
	dir := t.TempDir()
	repoDir := filepath.Join(dir, "traces")
	runOK(t, "gen-real", "-repo", repoDir, "-kind", "web")
	name := repository.RealName("raid5-hdd", "web-o4")

	// Repository entry to a profile file.
	profilePath := filepath.Join(dir, "web.json")
	out := runOK(t, "analyze", "-repo", repoDir, "-trace", name, "-out", profilePath)
	if !strings.Contains(out, "analyzed") || !strings.Contains(out, profilePath) {
		t.Fatalf("analyze output: %s", out)
	}
	p, err := workload.ReadProfile(profilePath)
	if err != nil {
		t.Fatal(err)
	}
	// Default label comes from the file name.
	if p.Name != strings.TrimSuffix(name, repository.Ext) || p.IOs == 0 {
		t.Fatalf("profile = %+v", p)
	}

	// Direct file input with an explicit label, JSON to stdout.
	tracePath := filepath.Join(repoDir, name)
	out = runOK(t, "analyze", "-in", tracePath, "-name", "weblabel")
	p2, err := workload.Decode(strings.NewReader(out))
	if err != nil {
		t.Fatalf("stdout not a profile: %v\n%s", err, out)
	}
	if p2.Name != "weblabel" || p2.IOs != p.IOs {
		t.Fatalf("stdout profile = %+v", p2)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	var buf bytes.Buffer
	cases := [][]string{
		{"analyze"},                            // neither -trace nor -in
		{"analyze", "-trace", "a", "-in", "b"}, // both sources
		{"analyze", "-in", filepath.Join(t.TempDir(), "missing.replay")},
	}
	for _, args := range cases {
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestVerifyFidelityCommand(t *testing.T) {
	out := runOK(t, "verify", "-golden", goldenCorpusDir, "-fidelity")
	if !strings.Contains(out, "workload round-trip fidelity verified") || strings.Count(out, "PASS") != 3 {
		t.Fatalf("fidelity output: %s", out)
	}
	var buf bytes.Buffer
	if err := run([]string{"verify", "-fidelity", "-update"}, &buf); err == nil {
		t.Fatal("-fidelity -update accepted")
	}
}

// TestFleetCommand: the fleet subcommand runs end to end and its
// telemetry summary is byte-identical across worker counts.
func TestFleetCommand(t *testing.T) {
	dir := t.TempDir()
	var summaries [][]byte
	for i, workers := range []string{"1", "2"} {
		telDir := filepath.Join(dir, "tel"+workers)
		out := runOK(t, "fleet", "-arrays", "6", "-workers", workers,
			"-policy", "least-loaded", "-duration", "200ms", "-iops", "500",
			"-admit-rate", "400", "-power-cap", "3000", "-telemetry-dir", telDir)
		for _, want := range []string{"6 raid5-hdd arrays", "policy least-loaded", "rejected", "IOPS/W", "power cap 3000.0 W", "telemetry written"} {
			if !strings.Contains(out, want) {
				t.Fatalf("fleet output missing %q:\n%s", want, out)
			}
		}
		raw, err := os.ReadFile(filepath.Join(telDir, "summary.json"))
		if err != nil {
			t.Fatal(err)
		}
		summaries = append(summaries, raw)
		if i > 0 && !bytes.Equal(summaries[0], raw) {
			t.Fatalf("summary.json diverges between 1 and %s workers", workers)
		}
		rep := runOK(t, "report", "-dir", telDir)
		if !strings.Contains(rep, "fleet.offered") {
			t.Fatalf("report output:\n%s", rep)
		}
	}
}

// TestFleetCommandTraceStream: -trace replays a repository entry
// through the fleet router.
func TestFleetCommandTraceStream(t *testing.T) {
	repoDir := filepath.Join(t.TempDir(), "traces")
	runOK(t, "gen-real", "-repo", repoDir, "-kind", "web")
	out := runOK(t, "repo", "-repo", repoDir)
	traceName := strings.Fields(out)[0]
	out = runOK(t, "fleet", "-arrays", "3", "-workers", "2", "-policy", "affinity",
		"-repo", repoDir, "-trace", traceName)
	if !strings.Contains(out, "3 raid5-hdd arrays") || !strings.Contains(out, "rejected 0") {
		t.Fatalf("fleet trace output:\n%s", out)
	}
}

// TestFleetCommandErrors: flag validation.
func TestFleetCommandErrors(t *testing.T) {
	for _, args := range [][]string{
		{"fleet", "-arrays", "0"},
		{"fleet", "-policy", "nope"},
		{"fleet", "-device", "tape"},
		{"fleet", "-trace", "missing.replay", "-repo", t.TempDir()},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Fatalf("run(%v) succeeded, want error", args)
		}
	}
}
