package main

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/simtime"
	"repro/internal/slo"
)

// renderSLOTable writes the class×objective budget table the -watch
// dashboard refreshes: one row per objective with its window burns,
// remaining error budget and firing state, plus per-class admission
// counters.
func renderSLOTable(w io.Writer, st slo.Status) {
	fmt.Fprintf(w, "slo %s @ %s — %d alert(s), %d firing, %d unmatched\n",
		st.Spec, formatSim(st.Now), st.Alerts, st.Firing, st.Unmatched)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "CLASS\tOBJECTIVE\tKIND\tTARGET\tGOOD\tBAD\tFAST\tSLOW\tBUDGET\tSTATE")
	for _, c := range st.Classes {
		for _, o := range c.Objectives {
			state := "ok"
			if o.Firing {
				state = "FIRING"
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%g\t%d\t%d\t%.2f\t%.2f\t%s\t%s\n",
				c.Name, o.Name, o.Kind, o.Target, o.Good, o.Bad,
				o.FastBurn, o.SlowBurn, budgetBar(o.BudgetRemaining), state)
		}
	}
	fmt.Fprintln(tw, "\nCLASS\tOFFERED\tADMITTED\tREJECTED\tCOMPLETED")
	for _, c := range st.Classes {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\n", c.Name, c.Offered, c.Admitted, c.Rejected, c.Completed)
	}
	_ = tw.Flush()
}

// budgetBar renders an error budget as a ten-cell gauge: "#######---  70%".
func budgetBar(rem float64) string {
	if rem < 0 {
		rem = 0
	}
	if rem > 1 {
		rem = 1
	}
	full := int(rem*10 + 0.5)
	return strings.Repeat("#", full) + strings.Repeat("-", 10-full) + fmt.Sprintf(" %3.0f%%", rem*100)
}

// formatSim renders a sim-time instant compactly.
func formatSim(t simtime.Time) string {
	return time.Duration(t).String()
}

// sloWatcher throttles live dashboard redraws to the wall clock: the
// simulation crosses barriers far faster than a terminal repaints, so
// OnBarrier only redraws every refresh interval.  ANSI home+clear
// keeps the table in place, like watch(1).
type sloWatcher struct {
	out     io.Writer
	eng     *slo.Engine
	refresh time.Duration
	last    time.Time
}

func newSLOWatcher(out io.Writer, eng *slo.Engine) *sloWatcher {
	return &sloWatcher{out: out, eng: eng, refresh: 100 * time.Millisecond}
}

// OnBarrier is the fleet.Options.OnBarrier hook.
func (sw *sloWatcher) OnBarrier(simtime.Time) {
	now := time.Now()
	if now.Sub(sw.last) < sw.refresh {
		return
	}
	sw.last = now
	fmt.Fprint(sw.out, "\x1b[H\x1b[2J")
	renderSLOTable(sw.out, sw.eng.Snapshot())
}

// Final renders the end-of-run table without clearing the screen, so
// the last state survives in the scrollback.
func (sw *sloWatcher) Final() {
	fmt.Fprintln(sw.out)
	renderSLOTable(sw.out, sw.eng.Snapshot())
}
