// Package repro's root benchmark suite exposes one testing.B benchmark
// per table and figure in the paper's evaluation (Section VI), plus
// the ablations DESIGN.md calls out.  Each iteration regenerates the
// complete artifact on the simulated testbed; custom metrics surface
// the headline quantity so `go test -bench .` doubles as a results
// summary:
//
//	go test -bench . -benchmem
//	go test -bench Fig8 -benchtime 3x
package repro

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/synth"
)

func benchConfig() experiments.Config {
	return experiments.DefaultConfig()
}

// BenchmarkFig7NumDisks regenerates Fig. 7: idle wall power versus the
// number of populated disks.
func BenchmarkFig7NumDisks(b *testing.B) {
	var chassis, perDisk float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(benchConfig(), 6)
		if err != nil {
			b.Fatal(err)
		}
		chassis, perDisk = r.ChassisWatts, r.PerDiskWatts
	}
	b.ReportMetric(chassis, "chassisW")
	b.ReportMetric(perDisk, "W/disk")
}

// BenchmarkFig8LoadAccuracy regenerates Fig. 8: load-control accuracy
// on the fixed-size synthetic trace.
func BenchmarkFig8LoadAccuracy(b *testing.B) {
	var maxErr float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		maxErr = r.MaxError
	}
	b.ReportMetric(maxErr*100, "maxErr%")
}

// BenchmarkFig9LoadEfficiency regenerates Fig. 9: energy efficiency as
// a function of load proportion for several request sizes and read
// ratios.
func BenchmarkFig9LoadEfficiency(b *testing.B) {
	var smallFull, largeFull float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		smallFull = r.SubA[0].Points[len(r.SubA[0].Points)-1].Eff.IOPSPerWatt
		largeFull = r.SubA[len(r.SubA)-1].Points[len(r.SubA[0].Points)-1].Eff.IOPSPerWatt
	}
	b.ReportMetric(smallFull, "512B-IOPS/W")
	b.ReportMetric(largeFull, "1MB-IOPS/W")
}

// BenchmarkFig10RandomRatio regenerates Fig. 10: energy efficiency as
// a function of random ratio.
func BenchmarkFig10RandomRatio(b *testing.B) {
	var seq, rnd float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		pts := r.SubA[1].Points // 4 KB series
		seq = pts[0].Meas.Eff.MBPSPerKW
		rnd = pts[len(pts)-1].Meas.Eff.MBPSPerKW
	}
	b.ReportMetric(seq, "seq-MBPS/kW")
	b.ReportMetric(rnd, "rand-MBPS/kW")
}

// BenchmarkFig11ReadRatio regenerates Fig. 11: the read-ratio U-shape
// at low random ratios.
func BenchmarkFig11ReadRatio(b *testing.B) {
	var dip float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		seq := r.Series[0].Points
		ends := seq[0].Meas.Eff.MBPSPerKW
		if e := seq[len(seq)-1].Meas.Eff.MBPSPerKW; e < ends {
			ends = e
		}
		mid := seq[1].Meas.Eff.MBPSPerKW
		for _, p := range seq[1 : len(seq)-1] {
			if p.Meas.Eff.MBPSPerKW < mid {
				mid = p.Meas.Eff.MBPSPerKW
			}
		}
		dip = (ends - mid) / ends * 100
	}
	b.ReportMetric(dip, "U-dip%")
}

// BenchmarkFig12WebTimeline regenerates Fig. 12: the web-server trace
// replayed at five load proportions.
func BenchmarkFig12WebTimeline(b *testing.B) {
	var fullIOPS float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		fullIOPS = r.Series[len(r.Series)-1].Total.Result.IOPS
	}
	b.ReportMetric(fullIOPS, "fullIOPS")
}

// BenchmarkTableIIIWebStats regenerates Table III: the synthetic web
// trace's workload statistics.
func BenchmarkTableIIIWebStats(b *testing.B) {
	var readPct float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableIII(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		readPct = r.Stats.ReadRatio * 100
	}
	b.ReportMetric(readPct, "read%")
}

// BenchmarkTableIVWebAccuracy regenerates Table IV: load-control
// accuracy for the web-server trace.
func BenchmarkTableIVWebAccuracy(b *testing.B) {
	var maxErr float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableIV(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		maxErr = r.MaxErrIOPS
		if r.MaxErrMBPS > maxErr {
			maxErr = r.MaxErrMBPS
		}
	}
	b.ReportMetric(maxErr*100, "maxErr%")
}

// BenchmarkTableVCelloAccuracy regenerates Table V: load-control
// accuracy for the cello99-like trace (MBPS).
func BenchmarkTableVCelloAccuracy(b *testing.B) {
	var maxErr float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableV(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		maxErr = r.MaxErrMBPS
	}
	b.ReportMetric(maxErr*100, "maxErr%")
}

// BenchmarkSSDStudy regenerates the Section VI-G SSD results.
func BenchmarkSSDStudy(b *testing.B) {
	var idle float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.SSDStudy(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		idle = r.IdleWatts
	}
	b.ReportMetric(idle, "idleW")
}

// BenchmarkAblationUniformVsRandom measures the design-choice ablation
// behind Section IV-A: uniform versus random bunch selection.
func BenchmarkAblationUniformVsRandom(b *testing.B) {
	var uni, rnd float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.CompareFilters(benchConfig(), 0.2)
		if err != nil {
			b.Fatal(err)
		}
		uni, rnd = r.UniformShapeErr, r.RandomShapeErr
	}
	b.ReportMetric(uni, "uniformShapeErr")
	b.ReportMetric(rnd, "randomShapeErr")
}

// BenchmarkAblationGroupSize sweeps the bunch-group size G.
func BenchmarkAblationGroupSize(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.GroupSizeSweep(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, row := range r.Rows {
			if row.MaxErr > worst {
				worst = row.MaxErr
			}
		}
	}
	b.ReportMetric(worst*100, "maxErr%")
}

// BenchmarkAblationFilterVsScaler contrasts the proportional filter
// with inter-arrival scaling at the same target intensity.
func BenchmarkAblationFilterVsScaler(b *testing.B) {
	var f, s float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.CompareScaler(benchConfig(), 0.5)
		if err != nil {
			b.Fatal(err)
		}
		f, s = r.FilterLP, r.ScalerLP
	}
	b.ReportMetric(f, "filterLP")
	b.ReportMetric(s, "scalerLP")
}

// BenchmarkAblationWritePaths sweeps RAID-5 write request sizes across
// the full-stripe boundary.
func BenchmarkAblationWritePaths(b *testing.B) {
	var rmwWritesPerReq float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.WritePathStudy(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		rmwWritesPerReq = r.Rows[0].DiskWritesPerReq
	}
	b.ReportMetric(rmwWritesPerReq, "diskWrites/4KReq")
}

// BenchmarkConservationStudy measures the energy-conservation
// comparison (always-on vs TPM spin-down vs MAID) TRACER was built to
// enable.
func BenchmarkConservationStudy(b *testing.B) {
	var maidSavings float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.ConservationStudy(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Technique == "maid" && row.Load == 1.0 {
				maidSavings = row.SavingsPct
			}
		}
	}
	b.ReportMetric(maidSavings, "maidSavings%")
}

// BenchmarkThermalStudy measures the temperature-vs-load sweep (the
// paper's future-work metric).
func BenchmarkThermalStudy(b *testing.B) {
	var hottest float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.ThermalStudy(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		hottest = r.Rows[len(r.Rows)-1].SteadyHottestC
	}
	b.ReportMetric(hottest, "steadyHotC")
}

// BenchmarkDegradedMode measures the healthy-vs-degraded RAID-5 study.
func BenchmarkDegradedMode(b *testing.B) {
	var lossPct float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.DegradedStudy(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		rr := r.Rows[0]
		lossPct = (1 - rr.Degraded.Result.IOPS/rr.Healthy.Result.IOPS) * 100
	}
	b.ReportMetric(lossPct, "randReadLoss%")
}

// BenchmarkSchedulerAblation measures the FIFO/SSTF/LOOK comparison.
func BenchmarkSchedulerAblation(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.SchedulerStudy(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		gain = r.Rows[1].Meas.Result.IOPS / r.Rows[0].Meas.Result.IOPS
	}
	b.ReportMetric(gain, "sstfSpeedup")
}

// BenchmarkERAIDStudy measures the redundancy-based power-saving
// comparison.
func BenchmarkERAIDStudy(b *testing.B) {
	var savings float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.ERAIDStudy(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		savings = r.Rows[1].SavingsPct
	}
	b.ReportMetric(savings, "eraidSavings%")
}

// BenchmarkModeSweepSingle measures one cell of the paper's 125-trace
// sweep end to end (collect + 10-load replay + metering).
func BenchmarkModeSweepSingle(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		_, err := experiments.ModeSweep(cfg, experiments.HDDArray, sweepMode)
		if err != nil {
			b.Fatal(err)
		}
	}
}

var sweepMode = synth.Mode{RequestBytes: 16 << 10, ReadRatio: 0.5, RandomRatio: 0.5}

// BenchmarkParallelSweep measures the parsweep fan-out end to end: the
// same sweep cell as BenchmarkModeSweepSingle, but with its 10 load
// replays spread across all cores (Workers: 0).  The custom metrics
// report the wall-clock speedup over the sweep forced sequential
// (Workers: 1) and the core count it was achieved on; determinism of
// the parallel path is covered by internal/experiments' regression
// tests.
func BenchmarkParallelSweep(b *testing.B) {
	seqCfg := benchConfig()
	seqCfg.Workers = 1
	start := time.Now()
	if _, err := experiments.ModeSweep(seqCfg, experiments.HDDArray, sweepMode); err != nil {
		b.Fatal(err)
	}
	seq := time.Since(start)

	parCfg := benchConfig()
	parCfg.Workers = 0 // all cores
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ModeSweep(parCfg, experiments.HDDArray, sweepMode); err != nil {
			b.Fatal(err)
		}
	}
	par := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
}
