// Conservation demonstrates TRACER's purpose: comparing
// energy-conservation techniques under identical, load-controlled
// workloads.  A sparse web-server trace is replayed at three load
// proportions against five configurations — an always-on JBOD, timeout
// spin-down (TPM), dynamic RPM (DRPM), popular data concentration (PDC)
// and a MAID — and the energy
// savings and response-time penalties are reported side by side,
// exactly the comparison Table I of the paper says the field lacked a
// uniform way to make.
//
//	go run ./examples/conservation
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	fmt.Println("Comparing energy-conservation techniques with TRACER...")
	fmt.Println("(always-on vs TPM vs DRPM vs PDC vs MAID, sparse web workload)")
	fmt.Println()
	r, err := experiments.ConservationStudy(experiments.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	experiments.RenderConservationStudy(os.Stdout, r)
	fmt.Println()
	fmt.Println("Reading the table:")
	fmt.Println(" - TPM alone finds no idle windows in a striped layout: it thrashes")
	fmt.Println("   between standby and 6-second spin-ups, losing energy AND latency.")
	fmt.Println(" - DRPM trades a slower spindle for modest savings with millisecond-")
	fmt.Println("   scale penalties: it never stops the platter.")
	fmt.Println(" - PDC migrates popular chunks onto the first disks so the rest can")
	fmt.Println("   sleep: MAID-class savings without dedicated cache hardware.")
	fmt.Println(" - MAID concentrates the hot set on an always-on cache disk, letting")
	fmt.Println("   the data disks sleep for real: the largest savings at every load.")
}
