// ssd_vs_hdd reproduces Section VI-G's comparison: evaluate the same
// workload modes on the 6-drive HDD RAID-5 and the 4-drive SLC SSD
// RAID-5, reporting IOPS/Watt and MBPS/Kilowatt side by side.
//
//	go run ./examples/ssd_vs_hdd
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/powersim"
	"repro/internal/replay"
	"repro/internal/simtime"
	"repro/internal/synth"
)

func evaluate(kind experiments.ArrayKind, mode synth.Mode) metrics.Efficiency {
	cfg := experiments.DefaultConfig()
	// Collect the peak trace on a pristine array of this kind.
	engine, array, err := experiments.NewSystem(cfg, kind)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := synth.Collect(engine, array, synth.CollectParams{
		Mode:            mode,
		Duration:        2 * simtime.Second,
		QueueDepth:      8,
		WorkingSetBytes: 8 << 30,
		Seed:            1,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Replay at full load on a fresh array and meter power.
	engine, array, err = experiments.NewSystem(cfg, kind)
	if err != nil {
		log.Fatal(err)
	}
	res, err := replay.ReplayAtLoad(engine, array, trace, 1.0, replay.Options{})
	if err != nil {
		log.Fatal(err)
	}
	meter := powersim.DefaultMeter(array.PowerSource())
	watts := powersim.MeanWatts(meter.Measure(res.Start, res.End))
	return metrics.NewEfficiency(res.IOPS, res.MBPS, watts, 0)
}

func main() {
	// Idle baselines first (the paper reports 195.8 W for the SSD array).
	for _, kind := range []experiments.ArrayKind{experiments.HDDArray, experiments.SSDArray} {
		engine, array, err := experiments.NewSystem(experiments.DefaultConfig(), kind)
		if err != nil {
			log.Fatal(err)
		}
		engine.RunUntil(simtime.Time(5 * simtime.Second))
		meter := powersim.DefaultMeter(array.PowerSource())
		fmt.Printf("%s idle: %.1f W\n", kind, powersim.MeanWatts(meter.Measure(0, engine.Now())))
	}

	modes := []synth.Mode{
		{RequestBytes: 4 << 10, ReadRatio: 1, RandomRatio: 1},    // random reads
		{RequestBytes: 4 << 10, ReadRatio: 0, RandomRatio: 1},    // random writes
		{RequestBytes: 64 << 10, ReadRatio: 1, RandomRatio: 0},   // sequential reads
		{RequestBytes: 64 << 10, ReadRatio: 0.5, RandomRatio: 0}, // sequential mix
	}
	fmt.Println("\nmode\t\t\tHDD IOPS/W\tSSD IOPS/W\tHDD MBPS/kW\tSSD MBPS/kW")
	for _, mode := range modes {
		h := evaluate(experiments.HDDArray, mode)
		s := evaluate(experiments.SSDArray, mode)
		fmt.Printf("%-22s\t%.3f\t%.3f\t%.2f\t%.2f\n", mode, h.IOPSPerWatt, s.IOPSPerWatt, h.MBPSPerKW, s.MBPSPerKW)
	}
	fmt.Println("\nSSD-based RAID-5 wins decisively on random workloads (no seeks);")
	fmt.Println("its energy efficiency is strongly shaped by read/write ratio (GC cost).")
}
