// Quickstart: collect a peak workload trace on a simulated RAID-5
// array, replay it at three load proportions with TRACER's uniform
// filter, and report throughput, power and the paper's combined
// energy-efficiency metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/disksim"
	"repro/internal/metrics"
	"repro/internal/powersim"
	"repro/internal/raid"
	"repro/internal/replay"
	"repro/internal/simtime"
	"repro/internal/synth"
)

func main() {
	// 1. Provision the system under test: six 7200 RPM drives behind a
	// RAID-5 controller with a 128 KB strip, cache disabled (Table II).
	engine := simtime.NewEngine()
	array, err := raid.NewHDDArray(engine, raid.DefaultParams(), 6, disksim.Seagate7200())
	if err != nil {
		log.Fatal(err)
	}

	// 2. Collect a peak trace the way the paper does with IOmeter:
	// closed-loop, 4 KB requests, half reads, half random.
	trace, err := synth.Collect(engine, array, synth.CollectParams{
		Mode:            synth.Mode{RequestBytes: 4096, ReadRatio: 0.5, RandomRatio: 0.5},
		Duration:        2 * simtime.Second,
		QueueDepth:      8,
		WorkingSetBytes: 8 << 30,
		Seed:            1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected peak trace: %d IOs in %d bunches\n", trace.NumIOs(), trace.NumBunches())

	// 3. Replay at three configured load proportions on a fresh array
	// each time, metering wall power like the Hall-effect analyzer.
	fmt.Println("load%\tIOPS\tMBPS\tresp(ms)\twatts\tIOPS/W\tMBPS/kW")
	for _, load := range []float64{0.2, 0.5, 1.0} {
		e := simtime.NewEngine()
		a, err := raid.NewHDDArray(e, raid.DefaultParams(), 6, disksim.Seagate7200())
		if err != nil {
			log.Fatal(err)
		}
		res, err := replay.ReplayAtLoad(e, a, trace, load, replay.Options{})
		if err != nil {
			log.Fatal(err)
		}
		meter := powersim.DefaultMeter(a.PowerSource())
		watts := powersim.MeanWatts(meter.Measure(res.Start, res.End))
		eff := metrics.NewEfficiency(res.IOPS, res.MBPS, watts, 0)
		fmt.Printf("%.0f\t%.1f\t%.3f\t%.2f\t%.1f\t%.3f\t%.2f\n",
			load*100, res.IOPS, res.MBPS, res.MeanResponse.Seconds()*1000,
			watts, eff.IOPSPerWatt, eff.MBPSPerKW)
	}
}
