// Distributed runs the full Fig. 3 topology in one process over
// loopback TCP: a workload-generator agent owning the simulated RAID-5
// array and a trace repository, a power-analyzer agent aggregating the
// metered samples, and an evaluation host that launches tests and
// joins performance with power into database records.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/host"
	"repro/internal/netproto"
	"repro/internal/repository"
	"repro/internal/simtime"
	"repro/internal/synth"
)

func main() {
	// Build a small trace repository for the generator to serve.
	dir, err := os.MkdirTemp("", "tracer-repo-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	repo, err := repository.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	cfg := experiments.DefaultConfig()
	engine, array, err := experiments.NewSystem(cfg, experiments.HDDArray)
	if err != nil {
		log.Fatal(err)
	}
	mode := synth.Mode{RequestBytes: 4096, ReadRatio: 0.5, RandomRatio: 0.5}
	trace, err := synth.Collect(engine, array, synth.CollectParams{
		Mode: mode, Duration: 2 * simtime.Second, QueueDepth: 8, WorkingSetBytes: 8 << 30, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	entry, err := repo.StoreSynthetic("raid5-hdd", mode, trace)
	if err != nil {
		log.Fatal(err)
	}
	traceName := filepath.Base(entry.Path)

	// Power analyzer agent (multi-channel KS706 stand-in).
	analyzer := cluster.NewAnalyzerAgent(nil)
	aAddr, err := analyzer.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer analyzer.Close()

	// Workload generator agent: owns the array, taps its wall power.
	factory := func() (*cluster.SystemUnderTest, error) {
		e, a, err := experiments.NewSystem(cfg, experiments.HDDArray)
		if err != nil {
			return nil, err
		}
		return &cluster.SystemUnderTest{Engine: e, Device: a, Power: a.PowerSource(), Name: "raid5-hdd"}, nil
	}
	generator := cluster.NewGeneratorAgent(repo, factory, aAddr.String(), "hdd-array", nil)
	gAddr, err := generator.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer generator.Close()
	fmt.Printf("generator on %s, analyzer on %s\n", gAddr, aAddr)

	// Evaluation host: drive tests at three load levels.
	db := host.NewDB()
	h, err := cluster.Dial(gAddr.String(), aAddr.String(), db)
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()

	fmt.Println("load%\tIOPS\tMBPS\twatts\tamps\tIOPS/W")
	for _, load := range []float64{0.25, 0.5, 1.0} {
		outcome, err := h.RunTest(
			netproto.StartTest{TraceName: traceName, LoadProportion: load},
			"raid5-hdd",
			host.ModeVector{RequestBytes: mode.RequestBytes, ReadRatio: mode.ReadRatio, RandomRatio: mode.RandomRatio, LoadProportion: load},
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.0f\t%.1f\t%.3f\t%.1f\t%.3f\t%.3f\n",
			load*100, outcome.Result.IOPS, outcome.Result.MBPS,
			outcome.Power.MeanWatts, outcome.Power.MeanAmps,
			outcome.Record.Efficiency.IOPSPerWatt)
	}
	fmt.Printf("\n%d records stored in the evaluation host's database\n", db.Len())
	for _, r := range db.Select(host.Query{}) {
		fmt.Printf("  record %d: load %.0f%%, %.1f IOPS, %.1f W, %.3f IOPS/W\n",
			r.ID, r.Mode.LoadProportion*100, r.Perf.IOPS, r.Power.MeanWatts, r.Efficiency.IOPSPerWatt)
	}
}
