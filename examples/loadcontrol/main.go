// Loadcontrol reproduces the paper's load-control validation workflow
// (Tables IV/V): replay a bursty real-world-style web-server trace at
// configured load proportions 10%..100% and compare the measured load
// proportion LP(f,f') against the configured one — including the
// ablation against random bunch selection that motivates the paper's
// uniform filter.
//
//	go run ./examples/loadcontrol
package main

import (
	"fmt"
	"log"

	"repro/internal/blktrace"
	"repro/internal/disksim"
	"repro/internal/metrics"
	"repro/internal/raid"
	"repro/internal/replay"
	"repro/internal/simtime"
	"repro/internal/synth"
)

func measure(trace *blktrace.Trace, f replay.Filter) *replay.Result {
	e := simtime.NewEngine()
	a, err := raid.NewHDDArray(e, raid.DefaultParams(), 6, disksim.Seagate7200())
	if err != nil {
		log.Fatal(err)
	}
	res, err := replay.ReplayFiltered(e, a, trace, f, replay.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	trace := synth.WebServerTrace(synth.DefaultWebServer())
	st := blktrace.ComputeStats(trace)
	fmt.Printf("web-server trace: %d IOs, read %.2f%%, mean request %.1f KB\n",
		st.IOs, st.ReadRatio*100, st.AvgRequestBytes/1024)

	full := measure(trace, replay.Identity{})
	fmt.Println("\nConfigured%\tmeasured%(IOPS)\taccuracy\tmeasured%(MBPS)\taccuracy")
	var worst float64
	for _, load := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		res := measure(trace, replay.UniformFilter{Proportion: load})
		lpIOPS := metrics.LoadProportion(full.IOPS, res.IOPS)
		lpMBPS := metrics.LoadProportion(full.MBPS, res.MBPS)
		accI := metrics.Accuracy(lpIOPS, load)
		accM := metrics.Accuracy(lpMBPS, load)
		for _, acc := range []float64{accI, accM} {
			if e := metrics.ErrorRate(acc); e > worst {
				worst = e
			}
		}
		fmt.Printf("%.0f\t%.3f\t%.4f\t%.3f\t%.4f\n", load*100, lpIOPS*100, accI, lpMBPS*100, accM)
	}
	fmt.Printf("worst error: %.2f%% (paper reports ~7%% max for its web trace)\n", worst*100)

	// Ablation: the rejected random (Bernoulli) selection at 20% load.
	uni := measure(trace, replay.UniformFilter{Proportion: 0.2})
	rnd := measure(trace, replay.RandomFilter{Proportion: 0.2, Seed: 42})
	fmt.Printf("\nat 20%% load: uniform filter LP=%.3f, random filter LP=%.3f\n",
		metrics.LoadProportion(full.IOPS, uni.IOPS), metrics.LoadProportion(full.IOPS, rnd.IOPS))
	fmt.Println("uniform selection keeps every bunch-group's contribution exact;")
	fmt.Println("random selection only matches in expectation and distorts bursts.")
}
